"""Intra-repo call graph: hot-scope status propagates through call sites.

Before this pass, only *directly marked* scopes (``# repro: hot``
pragma, ``@hot_kernel`` decorator, lexical nesting under either) were
analyzed — a kernel called *from* a hot scope but defined in an unmarked
module escaped every rule.  This module builds a lightweight call graph
over all files handed to :func:`repro.lint.engine.lint_paths` and marks
every function reachable from a hot scope as hot too, writing the result
into each :class:`~repro.lint.engine.FileContext`'s ``propagated_hot``
set (dotted in-file qualnames).

Resolution is deliberately conservative — a heuristic linter must not
drown real kernels in false positives:

* ``f(...)``            -> a same-module def/class ``f``, else a
  ``from repro.x import f`` symbol (intra-repo only);
* ``self.m(...)``       -> method ``m`` of the lexically enclosing
  class, else the unique-method fallback below;
* ``mod.f(...)``        -> ``f`` in the module ``mod`` is an alias for
  (``import repro.x as mod`` / ``from repro import x``);
* ``obj.m(...)``        -> resolved only when the whole project defines
  **exactly one** function named ``m`` (dunders excluded) — ambiguous
  method names are skipped rather than over-marked;
* calling a class marks its ``__init__``.

``# repro: cold`` on a def/class is a **propagation barrier**: the
scope is not marked hot and its callees are not traversed through it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import (
    FileContext, _decorated_hot, _scope_lines,
)

#: (module, dotted-qualname) — the graph's node key
NodeKey = Tuple[str, str]


def module_name(path: str) -> str:
    """Dotted module path for a file: ``src/repro/lattice/cell.py`` ->
    ``repro.lattice.cell``.  Files outside a recognizable package root
    fall back to their stem (fixture files lint standalone)."""
    parts = list(PurePosixPath(str(path).replace("\\", "/")).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("src", "lib"):
        if anchor in parts:
            tail = parts[parts.index(anchor) + 1:]
            if tail:
                return ".".join(tail)
    if "repro" in parts:
        return ".".join(parts[parts.index("repro"):])
    return parts[-1] if parts else "<module>"


@dataclass
class FunctionNode:
    """One def/class scope in the graph."""

    key: NodeKey
    ctx: FileContext
    node: ast.AST
    is_class: bool
    hot: bool          # directly marked (pragma/decorator/lexical)
    cold: bool         # carries a cold pragma — propagation barrier
    enclosing_class: Optional[str] = None
    #: unresolved call references collected from the body
    calls: List[Tuple[str, ...]] = field(default_factory=list)


class _DefCollector:
    """Walk one file, recording scopes, direct hotness, and call refs."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.module = module_name(ctx.path)
        self.nodes: Dict[str, FunctionNode] = {}
        #: local alias -> dotted module path (``import repro.x as y``)
        self.mod_aliases: Dict[str, str] = {}
        #: local symbol -> (module, name)  (``from repro.x import f``)
        self.symbols: Dict[str, Tuple[str, str]] = {}
        self._collect_imports(ctx.tree)
        self._walk_body(ctx.tree.body, qual=[], hot=ctx.module_hot,
                        enclosing_class=None)

    # -- imports -----------------------------------------------------------------
    def _collect_imports(self, tree: ast.Module) -> None:
        for stmt in ast.walk(tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # Only a full dotted alias is usable for attr calls.
                    self.mod_aliases[local] = (
                        alias.name if alias.asname else alias.name)
            elif isinstance(stmt, ast.ImportFrom) and stmt.module \
                    and stmt.level == 0:
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    self.symbols[local] = (stmt.module, alias.name)

    # -- scope walk ---------------------------------------------------------------
    def _is_cold(self, node: ast.AST) -> bool:
        return bool(set(_scope_lines(node)) & self.ctx.cold_lines)

    def _is_marked_hot(self, node: ast.AST) -> bool:
        return bool(set(_scope_lines(node)) & self.ctx.hot_lines) \
            or _decorated_hot(node)

    def _walk_body(self, body: Sequence[ast.stmt], qual: List[str],
                   hot: bool, enclosing_class: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                cold = self._is_cold(stmt)
                eff_hot = (not cold) and (self._is_marked_hot(stmt) or hot)
                qualname = ".".join(qual + [stmt.name])
                is_class = isinstance(stmt, ast.ClassDef)
                fn = FunctionNode(
                    key=(self.module, qualname), ctx=self.ctx, node=stmt,
                    is_class=is_class, hot=eff_hot, cold=cold,
                    enclosing_class=enclosing_class)
                if not is_class:
                    fn.calls = self._collect_calls(stmt)
                self.nodes[qualname] = fn
                self._walk_body(
                    stmt.body, qual + [stmt.name], eff_hot,
                    enclosing_class=stmt.name if is_class
                    else enclosing_class)
            else:
                # Module/class-level statements can call too (rare);
                # attribute them to a synthetic "<module>" node only at
                # module level when the module itself is hot.
                pass

    def _collect_calls(self, fn_node: ast.AST) -> List[Tuple[str, ...]]:
        """Call refs in ``fn_node``'s body, not descending into nested
        def/class scopes (those are graph nodes of their own and inherit
        hotness lexically)."""
        out: List[Tuple[str, ...]] = []

        def visit(node: ast.AST, top: bool) -> None:
            if not top and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
                return
            if isinstance(node, ast.Call):
                ref = self._call_ref(node.func)
                if ref is not None:
                    out.append(ref)
            for child in ast.iter_child_nodes(node):
                visit(child, False)

        visit(fn_node, True)
        return out

    def _call_ref(self, func: ast.AST) -> Optional[Tuple[str, ...]]:
        if isinstance(func, ast.Name):
            return ("name", func.id)
        if isinstance(func, ast.Attribute):
            meth = func.attr
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self":
                    return ("self", meth)
                if base.id in self.mod_aliases:
                    return ("mod", self.mod_aliases[base.id], meth)
                return ("method", meth)
            if isinstance(base, ast.Attribute):
                # dotted module use: repro.lattice.cell.fn(...)
                dotted = self._dotted(base)
                if dotted is not None and dotted in \
                        set(self.mod_aliases.values()):
                    return ("mod", dotted, meth)
                return ("method", meth)
            return ("method", meth)
        return None

    @staticmethod
    def _dotted(node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None


class CallGraph:
    """The project-wide graph plus its propagation result."""

    def __init__(self, contexts: Sequence[FileContext]):
        self._collectors = [_DefCollector(ctx) for ctx in contexts]
        self.nodes: Dict[NodeKey, FunctionNode] = {}
        for col in self._collectors:
            for qual, fn in col.nodes.items():
                self.nodes[(col.module, qual)] = fn
        #: bare name -> node keys of non-class defs with that final name
        self.by_name: Dict[str, List[NodeKey]] = {}
        for key, fn in self.nodes.items():
            if not fn.is_class:
                self.by_name.setdefault(key[1].split(".")[-1],
                                        []).append(key)
        self.edges: Dict[NodeKey, Set[NodeKey]] = {
            key: set() for key in self.nodes}
        for col in self._collectors:
            for qual, fn in col.nodes.items():
                if fn.is_class:
                    continue
                src = (col.module, qual)
                for ref in fn.calls:
                    dst = self._resolve(col, qual, ref)
                    if dst is not None:
                        self.edges[src].add(dst)
        self.hot_set: Set[NodeKey] = self._propagate()

    # -- resolution ---------------------------------------------------------------
    def _class_init(self, key: NodeKey) -> Optional[NodeKey]:
        init = (key[0], key[1] + ".__init__")
        return init if init in self.nodes else None

    def _as_callable(self, key: NodeKey) -> Optional[NodeKey]:
        fn = self.nodes.get(key)
        if fn is None:
            return None
        if fn.is_class:
            return self._class_init(key)
        return key

    def _resolve(self, col: _DefCollector, caller_qual: str,
                 ref: Tuple[str, ...]) -> Optional[NodeKey]:
        kind = ref[0]
        if kind == "name":
            name = ref[1]
            # same-module def (module level)
            hit = self._as_callable((col.module, name))
            if hit is not None:
                return hit
            # imported symbol
            if name in col.symbols:
                mod, sym = col.symbols[name]
                return self._as_callable((mod, sym))
            return self._unique_method(name)
        if kind == "self":
            meth = ref[1]
            fn = col.nodes.get(caller_qual)
            klass = fn.enclosing_class if fn else None
            if klass:
                hit = self._as_callable((col.module, f"{klass}.{meth}"))
                if hit is not None:
                    return hit
            return self._unique_method(meth)
        if kind == "mod":
            _, mod, name = ref
            return self._as_callable((mod, name))
        if kind == "method":
            return self._unique_method(ref[1])
        return None

    def _unique_method(self, name: str) -> Optional[NodeKey]:
        """Resolve ``obj.m(...)`` only when the project defines exactly
        one function/method named ``m`` (dunders never resolve)."""
        if name.startswith("__") and name.endswith("__"):
            return None
        candidates = self.by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- propagation --------------------------------------------------------------
    def _propagate(self) -> Set[NodeKey]:
        hot: Set[NodeKey] = {key for key, fn in self.nodes.items()
                             if fn.hot and not fn.cold}
        frontier = list(hot)
        while frontier:
            src = frontier.pop()
            for dst in self.edges.get(src, ()):
                fn = self.nodes[dst]
                if fn.cold or dst in hot:
                    continue
                hot.add(dst)
                frontier.append(dst)
        return hot

    def propagated_only(self) -> Set[NodeKey]:
        """Nodes hot purely through propagation (not directly marked)."""
        return {key for key in self.hot_set if not self.nodes[key].hot}


def propagate_hot(contexts: Sequence[FileContext]) -> CallGraph:
    """Build the graph over ``contexts`` and write each file's
    propagated qualnames into ``ctx.propagated_hot``.  Returns the graph
    (tests inspect ``hot_set`` / ``edges``)."""
    graph = CallGraph(contexts)
    per_module: Dict[str, Set[str]] = {}
    for mod, qual in graph.hot_set:
        per_module.setdefault(mod, set()).add(qual)
    for ctx in contexts:
        ctx.propagated_hot = per_module.get(module_name(ctx.path), set())
    return graph
