"""CLI entry point: ``python -m repro.lint src/ [--format=json]``.

Exit status is 0 when the tree is clean (or every finding is
grandfathered by ``--baseline``), 1 when new violations were found,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.lint.baseline import (
    apply_baseline, load_baseline, write_baseline,
)
from repro.lint.engine import lint_paths
from repro.lint.report import format_json, format_sarif, format_text
from repro.lint.rules import RULE_CATALOG

_FORMATTERS = {"text": format_text, "json": format_json,
               "sarif": format_sarif}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST lint enforcing SoA-layout, mixed-precision, and "
                    "determinism kernel invariants (rules R001-R010).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="grandfather findings recorded in FILE; only "
                             "new findings are reported and fail the run")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write current findings to FILE as the new "
                             "baseline and exit 0")
    parser.add_argument("--no-callgraph", action="store_true",
                        help="disable call-graph hot-scope propagation "
                             "(directly marked scopes only)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULE_CATALOG.items()):
            print(f"{rule}  {desc}")
        return 0

    select = None
    if args.select:
        select = {s.strip().upper() for s in args.select.split(",")}
        unknown = select - set(RULE_CATALOG)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    paths = args.paths or ["src"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no such file or directory: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    violations, files_checked = lint_paths(
        paths, select=select, callgraph=not args.no_callgraph)

    if args.write_baseline:
        doc = write_baseline(args.write_baseline, violations)
        print(f"wrote {len(doc['findings'])} fingerprint(s) "
              f"({len(violations)} finding(s)) to {args.write_baseline}")
        return 0

    grandfathered = 0
    if args.baseline:
        if not os.path.exists(args.baseline):
            print(f"baseline file not found: {args.baseline}",
                  file=sys.stderr)
            return 2
        violations, grandfathered = apply_baseline(
            violations, load_baseline(args.baseline))

    print(_FORMATTERS[args.format](violations, files_checked))
    if grandfathered and args.format == "text":
        print(f"({grandfathered} baselined finding(s) suppressed by "
              f"{args.baseline})", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
