"""CLI entry point: ``python -m repro.lint src/ [--format=json]``.

Exit status is 0 when the tree is clean, 1 when violations were found,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.lint.engine import lint_paths
from repro.lint.report import format_json, format_text
from repro.lint.rules import RULE_CATALOG


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST lint enforcing SoA-layout and mixed-precision "
                    "kernel invariants (rules R001-R004).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULE_CATALOG.items()):
            print(f"{rule}  {desc}")
        return 0

    select = None
    if args.select:
        select = {s.strip().upper() for s in args.select.split(",")}
        unknown = select - set(RULE_CATALOG)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    paths = args.paths or ["src"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no such file or directory: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    violations, files_checked = lint_paths(paths, select=select)
    formatter = format_json if args.format == "json" else format_text
    print(formatter(violations, files_checked))
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
