"""Rule engine: pragma parsing, hot-scope resolution, rule dispatch.

The engine parses each file once, extracts the comment pragmas
(``# repro: hot`` / ``# repro: cold`` / ``# repro: commit`` /
``# repro: backend-pure`` / ``# repro: noqa R00x``), resolves which
scopes are hot, runs every
registered rule's AST visitor, and filters suppressed violations.

Hotness has two sources:

* **direct marks** — a ``# repro: hot`` pragma, an ``@hot_kernel``
  decorator, or lexical nesting inside a marked scope; and
* **call-graph propagation** — when linting a set of files together
  (:func:`lint_paths`), :mod:`repro.lint.callgraph` follows call sites
  out of every directly-hot scope, so a kernel that is only *reached*
  from a hot scope is analyzed too.  ``# repro: cold`` is a propagation
  barrier in both directions.

Suppression hygiene is checked alongside the rules: a bare
``# repro: noqa`` (no rule ids) raises warning ``W001`` instead of
silently silencing everything, and a rule-scoped noqa whose named rules
no longer fire on that line raises ``W002`` (stale suppression).  The
``W`` pseudo-rules are never themselves noqa-suppressible — use the
baseline (:mod:`repro.lint.baseline`) to grandfather them.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

_PRAGMA_HOT = re.compile(r"#\s*repro:\s*hot\b")
_PRAGMA_COLD = re.compile(r"#\s*repro:\s*cold\b")
_PRAGMA_COMMIT = re.compile(r"#\s*repro:\s*commit\b")
_PRAGMA_BACKEND_PURE = re.compile(r"#\s*repro:\s*backend-pure\b")
_PRAGMA_NOQA = re.compile(
    r"#\s*repro:\s*noqa\b\s*:?\s*([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)?")

#: pseudo-rules emitted by the engine itself (suppression hygiene).
WARNING_RULES = ("W001", "W002")


@dataclass(frozen=True)
class Violation:
    """One rule hit, pinned to a file/line/column."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass
class FileContext:
    """Everything rules need about one source file."""

    path: str
    source: str
    tree: ast.Module
    #: line -> set of suppressed rule ids (empty set = suppress all rules)
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    #: line -> column of the noqa comment (for W001/W002 reports)
    noqa_cols: Dict[int, int] = field(default_factory=dict)
    #: lines carrying a `# repro: hot` comment
    hot_lines: Set[int] = field(default_factory=set)
    #: lines carrying a `# repro: cold` comment
    cold_lines: Set[int] = field(default_factory=set)
    #: lines carrying a `# repro: commit` comment (R008 epoch boundary)
    commit_lines: Set[int] = field(default_factory=set)
    #: lines carrying a `# repro: backend-pure` comment (R011 scopes)
    backend_pure_lines: Set[int] = field(default_factory=set)
    module_hot: bool = False
    module_backend_pure: bool = False
    #: dotted in-file qualnames made hot by call-graph propagation
    propagated_hot: Set[str] = field(default_factory=set)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in WARNING_RULES:
            return False  # suppression hygiene cannot be noqa'd away
        if line not in self.noqa:
            return False
        rules = self.noqa[line]
        return not rules or rule in rules


def _scan_pragmas(ctx: FileContext) -> None:
    """Populate pragma tables from the token stream (comments only)."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(ctx.source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line, col = tok.start
            text = tok.string
            m = _PRAGMA_NOQA.search(text)
            if m:
                ids = m.group(1)
                ctx.noqa[line] = (
                    {s.strip() for s in ids.split(",")} if ids else set())
                ctx.noqa_cols[line] = col
            if _PRAGMA_HOT.search(text):
                ctx.hot_lines.add(line)
                # Standalone comment at column 0 marks the whole module.
                if col == 0:
                    src_line = ctx.source.splitlines()[line - 1]
                    if src_line.lstrip().startswith("#"):
                        ctx.module_hot = True
            if _PRAGMA_COLD.search(text):
                ctx.cold_lines.add(line)
            if _PRAGMA_COMMIT.search(text):
                ctx.commit_lines.add(line)
            if _PRAGMA_BACKEND_PURE.search(text):
                ctx.backend_pure_lines.add(line)
                # Standalone comment at column 0 marks the whole module
                # (the shape jax_backend.py uses).
                if col == 0:
                    src_line = ctx.source.splitlines()[line - 1]
                    if src_line.lstrip().startswith("#"):
                        ctx.module_backend_pure = True
    except tokenize.TokenError:
        pass


def build_context(source: str, path: str = "<string>") -> FileContext:
    """Parse one file into a :class:`FileContext` (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path=path, source=source, tree=tree)
    _scan_pragmas(ctx)
    return ctx


def _decorated_hot(node: ast.AST) -> bool:
    """True when a def/class carries an ``@hot_kernel`` decorator."""
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "hot_kernel":
            return True
    return False


def _scope_lines(node: ast.AST) -> Iterable[int]:
    """Lines that may carry a scope-level pragma: decorators + def line(s)."""
    start = min([node.lineno] + [d.lineno for d in
                                 getattr(node, "decorator_list", [])])
    # The def line itself may wrap; take through the line before the first
    # body statement (that line belongs to the nested statement, which may
    # carry its own pragma), clamped for single-line `def f(): ...` forms.
    body = getattr(node, "body", None)
    if isinstance(body, list) and body:
        stop = max(start, body[0].lineno - 1)
    else:  # lambdas: body is a single expression
        stop = getattr(body, "lineno", node.lineno)
    return range(start, stop + 1)


def scope_name(node: ast.AST) -> str:
    """The qualname component a scope contributes (lambdas included)."""
    return getattr(node, "name", "<lambda>")


class ScopedVisitor(ast.NodeVisitor):
    """AST visitor tracking whether the current scope is hot.

    Hotness is inherited from the enclosing scope; a ``# repro: cold``
    pragma on the def/class line forces cold, a ``# repro: hot`` pragma
    or ``@hot_kernel`` decorator forces hot, and a scope whose qualname
    is in ``ctx.propagated_hot`` (reached from a hot scope through the
    call graph) is hot unless cold-marked.

    A parallel *commit* flag tracks ``# repro: commit`` scopes — the
    sanctioned epoch-boundary writers rule R008 keys off.
    """

    rule = "R000"

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.violations: List[Violation] = []
        self._hot_stack: List[bool] = [ctx.module_hot]
        self._commit_stack: List[bool] = [False]
        self._pure_stack: List[bool] = [ctx.module_backend_pure]
        self._qual_stack: List[str] = []

    @property
    def hot(self) -> bool:
        return self._hot_stack[-1]

    @property
    def in_commit(self) -> bool:
        return self._commit_stack[-1]

    @property
    def in_backend_pure(self) -> bool:
        return self._pure_stack[-1]

    @property
    def qualname(self) -> str:
        return ".".join(self._qual_stack)

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            rule=self.rule, path=self.ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), message=message))

    # -- scope bookkeeping -----------------------------------------------------
    def _effective_hot(self, node: ast.AST) -> bool:
        lines = set(_scope_lines(node))
        if lines & self.ctx.cold_lines:
            return False
        if lines & self.ctx.hot_lines or _decorated_hot(node):
            return True
        qual = ".".join(self._qual_stack + [scope_name(node)])
        if qual in self.ctx.propagated_hot:
            return True
        return self.hot

    def _effective_commit(self, node: ast.AST) -> bool:
        if set(_scope_lines(node)) & self.ctx.commit_lines:
            return True
        return self.in_commit

    def _effective_backend_pure(self, node: ast.AST) -> bool:
        if set(_scope_lines(node)) & self.ctx.backend_pure_lines:
            return True
        return self.in_backend_pure

    def _enter_scope(self, node: ast.AST) -> None:
        self._hot_stack.append(self._effective_hot(node))
        self._commit_stack.append(self._effective_commit(node))
        self._pure_stack.append(self._effective_backend_pure(node))
        self._qual_stack.append(scope_name(node))
        self.scope_entered(node)
        self.generic_visit(node)
        self.scope_left(node)
        self._qual_stack.pop()
        self._pure_stack.pop()
        self._commit_stack.pop()
        self._hot_stack.pop()

    def scope_entered(self, node: ast.AST) -> None:  # hook for rules
        pass

    def scope_left(self, node: ast.AST) -> None:  # hook for rules
        pass

    def visit_FunctionDef(self, node):
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node):
        self._enter_scope(node)

    def visit_ClassDef(self, node):
        self._enter_scope(node)

    def visit_Lambda(self, node):
        self._enter_scope(node)


def _suppression_warnings(ctx: FileContext, raw: Sequence[Violation],
                          run_rules: Set[str]) -> List[Violation]:
    """W001 for bare noqas, W002 for noqas that no longer match a hit.

    ``raw`` is the pre-suppression rule output; staleness is only judged
    against rules that actually ran (``run_rules``), so linting with
    ``--select R006`` does not flag every R002 suppression as stale.
    """
    fired: Dict[int, Set[str]] = {}
    for v in raw:
        fired.setdefault(v.line, set()).add(v.rule)
    out: List[Violation] = []
    for line, ids in sorted(ctx.noqa.items()):
        col = ctx.noqa_cols.get(line, 0)
        if not ids:
            out.append(Violation(
                rule="W001", path=ctx.path, line=line, col=col,
                message="bare '# repro: noqa' suppresses every rule on "
                        "the line — name the rule id(s), e.g. "
                        "'# repro: noqa R002'"))
            continue
        stale = sorted(r for r in ids & run_rules
                       if r not in fired.get(line, set()))
        if stale:
            out.append(Violation(
                rule="W002", path=ctx.path, line=line, col=col,
                message=f"stale suppression: {', '.join(stale)} no longer "
                        f"fire(s) on this line — drop the noqa"))
    return out


def _lint_context(ctx: FileContext,
                  rule_classes: Sequence[type]) -> List[Violation]:
    """Run rules over one prepared context; returns unsuppressed
    violations plus suppression-hygiene warnings."""
    raw: List[Violation] = []
    for cls in rule_classes:
        visitor = cls(ctx)
        visitor.visit(ctx.tree)
        raw.extend(visitor.violations)
    out = [v for v in raw if not ctx.is_suppressed(v.rule, v.line)]
    out.extend(_suppression_warnings(
        ctx, raw, {cls.rule for cls in rule_classes}))
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[type]] = None,
                callgraph: bool = True) -> List[Violation]:
    """Lint one source string; returns unsuppressed violations.

    Call-graph hot-scope propagation runs within the single file (pass
    ``callgraph=False`` for the directly-marked-scopes-only behavior).
    """
    from repro.lint.rules import ALL_RULES
    rule_classes = list(rules) if rules is not None else list(ALL_RULES)
    try:
        ctx = build_context(source, path)
    except SyntaxError as exc:
        return [Violation(rule="E999", path=path, line=exc.lineno or 0,
                          col=(exc.offset or 1) - 1,
                          message=f"syntax error: {exc.msg}")]
    if callgraph:
        from repro.lint.callgraph import propagate_hot
        propagate_hot([ctx])
    return _lint_context(ctx, rule_classes)


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of .py files."""
    out: List[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.extend(sorted(
                f for f in path.rglob("*.py")
                if "__pycache__" not in f.parts))
        elif path.suffix == ".py":
            out.append(path)
    return out


def lint_paths(paths: Sequence[str],
               select: Optional[Set[str]] = None,
               callgraph: bool = True
               ) -> Tuple[List[Violation], int]:
    """Lint files/directories; returns (violations, files_checked).

    All files are parsed first so hot-scope status can propagate through
    intra-repo call sites (including cross-file calls) before any rule
    runs.
    """
    from repro.lint.rules import ALL_RULES
    rule_classes = [r for r in ALL_RULES
                    if select is None or r.rule in select]
    files = discover_files(paths)
    violations: List[Violation] = []
    contexts: List[FileContext] = []
    for f in files:
        try:
            source = f.read_text(encoding="utf-8")
        except OSError as exc:
            violations.append(Violation(
                rule="E998", path=str(f), line=0, col=0,
                message=f"cannot read file: {exc}"))
            continue
        try:
            contexts.append(build_context(source, str(f)))
        except SyntaxError as exc:
            violations.append(Violation(
                rule="E999", path=str(f), line=exc.lineno or 0,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}"))
    if callgraph and contexts:
        from repro.lint.callgraph import propagate_hot
        propagate_hot(contexts)
    for ctx in contexts:
        violations.extend(_lint_context(ctx, rule_classes))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations, len(files)
