"""Rule engine: pragma parsing, hot-scope resolution, rule dispatch.

The engine parses each file once, extracts the comment pragmas
(``# repro: hot`` / ``# repro: cold`` / ``# repro: noqa R00x``), resolves
which scopes are hot, runs every registered rule's AST visitor, and
filters suppressed violations.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

_PRAGMA_HOT = re.compile(r"#\s*repro:\s*hot\b")
_PRAGMA_COLD = re.compile(r"#\s*repro:\s*cold\b")
_PRAGMA_NOQA = re.compile(
    r"#\s*repro:\s*noqa\b\s*:?\s*([A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)?")


@dataclass(frozen=True)
class Violation:
    """One rule hit, pinned to a file/line/column."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass
class FileContext:
    """Everything rules need about one source file."""

    path: str
    source: str
    tree: ast.Module
    #: line -> set of suppressed rule ids (empty set = suppress all rules)
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    #: lines carrying a `# repro: hot` comment
    hot_lines: Set[int] = field(default_factory=set)
    #: lines carrying a `# repro: cold` comment
    cold_lines: Set[int] = field(default_factory=set)
    module_hot: bool = False

    def is_suppressed(self, rule: str, line: int) -> bool:
        if line not in self.noqa:
            return False
        rules = self.noqa[line]
        return not rules or rule in rules


def _scan_pragmas(ctx: FileContext) -> None:
    """Populate pragma tables from the token stream (comments only)."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(ctx.source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line, col = tok.start
            text = tok.string
            m = _PRAGMA_NOQA.search(text)
            if m:
                ids = m.group(1)
                ctx.noqa[line] = (
                    {s.strip() for s in ids.split(",")} if ids else set())
            if _PRAGMA_HOT.search(text):
                ctx.hot_lines.add(line)
                # Standalone comment at column 0 marks the whole module.
                if col == 0:
                    src_line = ctx.source.splitlines()[line - 1]
                    if src_line.lstrip().startswith("#"):
                        ctx.module_hot = True
            if _PRAGMA_COLD.search(text):
                ctx.cold_lines.add(line)
    except tokenize.TokenError:
        pass


def _decorated_hot(node: ast.AST) -> bool:
    """True when a def/class carries an ``@hot_kernel`` decorator."""
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "hot_kernel":
            return True
    return False


def _scope_lines(node: ast.AST) -> Iterable[int]:
    """Lines that may carry a scope-level pragma: decorators + def line(s)."""
    start = min([node.lineno] + [d.lineno for d in
                                 getattr(node, "decorator_list", [])])
    # The def line itself may wrap; take through the first body statement.
    stop = node.body[0].lineno if getattr(node, "body", None) else node.lineno
    return range(start, stop + 1)


class ScopedVisitor(ast.NodeVisitor):
    """AST visitor tracking whether the current scope is hot.

    Hotness is inherited from the enclosing scope; a ``# repro: cold``
    pragma on the def/class line forces cold, a ``# repro: hot`` pragma
    or ``@hot_kernel`` decorator forces hot.
    """

    rule = "R000"

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.violations: List[Violation] = []
        self._hot_stack: List[bool] = [ctx.module_hot]

    @property
    def hot(self) -> bool:
        return self._hot_stack[-1]

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            rule=self.rule, path=self.ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), message=message))

    # -- scope bookkeeping -----------------------------------------------------
    def _effective_hot(self, node: ast.AST) -> bool:
        lines = set(_scope_lines(node))
        if lines & self.ctx.cold_lines:
            return False
        if lines & self.ctx.hot_lines or _decorated_hot(node):
            return True
        return self.hot

    def _enter_scope(self, node: ast.AST) -> None:
        self._hot_stack.append(self._effective_hot(node))
        self.scope_entered(node)
        self.generic_visit(node)
        self.scope_left(node)
        self._hot_stack.pop()

    def scope_entered(self, node: ast.AST) -> None:  # hook for rules
        pass

    def scope_left(self, node: ast.AST) -> None:  # hook for rules
        pass

    def visit_FunctionDef(self, node):
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node):
        self._enter_scope(node)

    def visit_ClassDef(self, node):
        self._enter_scope(node)


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[type]] = None) -> List[Violation]:
    """Lint one source string; returns unsuppressed violations."""
    from repro.lint.rules import ALL_RULES
    rule_classes = list(rules) if rules is not None else list(ALL_RULES)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(rule="E999", path=path, line=exc.lineno or 0,
                          col=(exc.offset or 1) - 1,
                          message=f"syntax error: {exc.msg}")]
    ctx = FileContext(path=path, source=source, tree=tree)
    _scan_pragmas(ctx)
    out: List[Violation] = []
    for cls in rule_classes:
        visitor = cls(ctx)
        visitor.visit(tree)
        for v in visitor.violations:
            if not ctx.is_suppressed(v.rule, v.line):
                out.append(v)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return out


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of .py files."""
    out: List[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.extend(sorted(
                f for f in path.rglob("*.py")
                if "__pycache__" not in f.parts))
        elif path.suffix == ".py":
            out.append(path)
    return out


def lint_paths(paths: Sequence[str],
               select: Optional[Set[str]] = None
               ) -> Tuple[List[Violation], int]:
    """Lint files/directories; returns (violations, files_checked)."""
    from repro.lint.rules import ALL_RULES
    rule_classes = [r for r in ALL_RULES
                    if select is None or r.rule in select]
    files = discover_files(paths)
    violations: List[Violation] = []
    for f in files:
        try:
            source = f.read_text(encoding="utf-8")
        except OSError as exc:
            violations.append(Violation(
                rule="E998", path=str(f), line=0, col=0,
                message=f"cannot read file: {exc}"))
            continue
        violations.extend(lint_source(source, str(f), rule_classes))
    return violations, len(files)
