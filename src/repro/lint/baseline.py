"""Committed finding baseline — grandfather pre-existing violations.

New rules land against a living codebase: some findings are real debt
worth fixing, some are *deliberate* (the jastrow species-mask dict loops
iterate in insertion order on purpose — adding ``sorted(...)`` would
reorder float accumulation and break the bitwise traces the suite pins).
Rather than mass-``noqa``'ing those, they are recorded once in a
committed baseline file and CI fails only on **new** findings.

A finding's fingerprint is ``(path, rule, message)`` — deliberately
line-number free, so unrelated edits that shift a grandfathered finding
up or down the file do not resurrect it.  Identical findings are
matched as a multiset: three baselined hits of one fingerprint absorb
at most three live hits; a fourth is new.

Baselines never cover ``E99x`` parse errors — a file that stops parsing
is always a regression.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.engine import Violation

BASELINE_VERSION = 1

#: rules a baseline is never allowed to absorb
NEVER_BASELINED_PREFIX = "E9"

Fingerprint = Tuple[str, str, str]


def fingerprint(v: Violation) -> Fingerprint:
    return (v.path, v.rule, v.message)


def write_baseline(path: str, violations: Sequence[Violation]) -> Dict:
    """Serialize the current findings as the new baseline (sorted and
    counted, so the file diffs cleanly under version control)."""
    counts = Counter(fingerprint(v) for v in violations
                     if not v.rule.startswith(NEVER_BASELINED_PREFIX))
    doc = {
        "version": BASELINE_VERSION,
        "comment": ("grandfathered repro.lint findings — regenerate with "
                    "'python -m repro.lint ... --write-baseline <path>'; "
                    "CI fails only on findings absent from this file"),
        "findings": [
            {"path": p, "rule": r, "message": m, "count": n}
            for (p, r, m), n in sorted(counts.items())
        ],
    }
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")
    return doc


def load_baseline(path: str) -> Counter:
    """Read a baseline file into a fingerprint multiset."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported lint baseline version {doc.get('version')!r} "
            f"in {path} (expected {BASELINE_VERSION})")
    counts: Counter = Counter()
    for entry in doc.get("findings", []):
        fp = (entry["path"], entry["rule"], entry["message"])
        counts[fp] += int(entry.get("count", 1))
    return counts


def apply_baseline(violations: Sequence[Violation], baseline: Counter
                   ) -> Tuple[List[Violation], int]:
    """Split findings into (new, n_grandfathered).

    Matching is multiset subtraction in report order: the first ``n``
    live hits of a fingerprint with baseline count ``n`` are absorbed,
    any excess is new.  Parse errors are never absorbed.
    """
    budget = Counter(baseline)
    new: List[Violation] = []
    grandfathered = 0
    for v in violations:
        fp = fingerprint(v)
        if not v.rule.startswith(NEVER_BASELINED_PREFIX) \
                and budget.get(fp, 0) > 0:
            budget[fp] -= 1
            grandfathered += 1
        else:
            new.append(v)
    return new, grandfathered
