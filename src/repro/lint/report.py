"""Text, JSON, and SARIF reporters for lint results."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.lint.engine import Violation, WARNING_RULES


def format_text(violations: Sequence[Violation], files_checked: int) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines: List[str] = [v.format() for v in violations]
    counts = Counter(v.rule for v in violations)
    if violations:
        per_rule = ", ".join(f"{r}: {n}" for r, n in sorted(counts.items()))
        lines.append("")
        lines.append(f"{len(violations)} violation(s) in {files_checked} "
                     f"file(s) checked ({per_rule})")
    else:
        lines.append(f"clean: 0 violations in {files_checked} file(s) checked")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation], files_checked: int) -> str:
    """Machine-readable report (stable keys, sorted input)."""
    payload = {
        "files_checked": files_checked,
        "violation_count": len(violations),
        "counts": dict(sorted(Counter(v.rule for v in violations).items())),
        "violations": [
            {"rule": v.rule, "path": v.path, "line": v.line,
             "col": v.col, "message": v.message}
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2)


def format_sarif(violations: Sequence[Violation], files_checked: int) -> str:
    """SARIF 2.1.0 report — what GitHub code scanning and the problem
    matcher pipeline consume to annotate PR diffs inline."""
    from repro.lint.rules import RULE_CATALOG

    seen_rules = sorted({v.rule for v in violations} | set(RULE_CATALOG))
    rule_index = {rule: i for i, rule in enumerate(seen_rules)}
    rules = [
        {
            "id": rule,
            "shortDescription": {
                "text": RULE_CATALOG.get(rule, "lint finding")},
            "defaultConfiguration": {
                "level": "warning" if rule in WARNING_RULES else "error"},
        }
        for rule in seen_rules
    ]
    results = [
        {
            "ruleId": v.rule,
            "ruleIndex": rule_index[v.rule],
            "level": "warning" if v.rule in WARNING_RULES else "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": max(v.line, 1),
                               "startColumn": v.col + 1},
                },
            }],
        }
        for v in violations
    ]
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro.lint",
                "informationUri": "docs/static_analysis.md",
                "rules": rules,
            }},
            "results": results,
            "properties": {"filesChecked": files_checked},
        }],
    }
    return json.dumps(doc, indent=2)
