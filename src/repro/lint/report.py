"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.lint.engine import Violation


def format_text(violations: Sequence[Violation], files_checked: int) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines: List[str] = [v.format() for v in violations]
    counts = Counter(v.rule for v in violations)
    if violations:
        per_rule = ", ".join(f"{r}: {n}" for r, n in sorted(counts.items()))
        lines.append("")
        lines.append(f"{len(violations)} violation(s) in {files_checked} "
                     f"file(s) checked ({per_rule})")
    else:
        lines.append(f"clean: 0 violations in {files_checked} file(s) checked")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation], files_checked: int) -> str:
    """Machine-readable report (stable keys, sorted input)."""
    payload = {
        "files_checked": files_checked,
        "violation_count": len(violations),
        "counts": dict(sorted(Counter(v.rule for v in violations).items())),
        "violations": [
            {"rule": v.rule, "path": v.path, "line": v.line,
             "col": v.col, "message": v.message}
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2)
