"""Runtime sanitizers — the dynamic half of ``repro.lint``.

Six checkers enforce at run time what the static rules enforce at parse
time, catching violations that only materialize on real data:

* :class:`DtypeSanitizer` — raises on silent ``float64`` upcasts of
  value-precision arrays under a mixed policy (the 5N²→5N and SP-memory
  wins silently evaporate when a kernel upcasts).
* :class:`LayoutSanitizer` — asserts SoA buffers stay C-contiguous and
  cache-aligned with zeroed padding (reductions over padded rows are only
  safe when the padding is zero).
* :class:`ForwardUpdateChecker` — cross-checks incrementally-updated
  distance-table rows/columns against a from-scratch recompute: the
  paper's drift safeguard for the forward-update scheme (Fig. 6b) and
  single-precision accumulation error.
* :class:`ShmRaceSanitizer` — the dynamic face of rule R008: checksums
  shared-memory regions over the windows in which the zero-copy
  contract says nobody writes, and raises on out-of-band mutation.
* :class:`RngStreamSanitizer` — the dynamic face of rule R006: patches
  the *global* NumPy RNG entry points to fail fast, so a stray
  ``np.random.normal()`` inside a hot scope dies loudly instead of
  silently desynchronizing the per-walker streams.
* :class:`CollectiveOrderChecker` — the dynamic face of rule R009:
  every ``SharedMemComm`` collective shares one wire protocol, so a
  worker calling ``allgather`` where its peers call ``allreduce``
  *succeeds on the wire* with garbage semantics; this checker compares
  the per-worker collective call logs at shutdown and raises on the
  first divergence.

All are toggled by ``REPRO_SANITIZE=1`` (see :func:`sanitizers_enabled`);
the QMC drivers consult that flag and run a :class:`SanitizerSuite`
after accepted moves and at measurement time, and the parallel crowd
driver arms the three concurrency sanitizers around each generation.
"""

from __future__ import annotations

import functools
import os
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.precision.policy import PrecisionPolicy

#: process-wide override used by the pytest ``sanitize`` fixture; None
#: defers to the REPRO_SANITIZE environment variable.
_FORCED: Optional[bool] = None


class SanitizerError(AssertionError):
    """An invariant the lint subsystem enforces was violated at run time."""


class ShmRaceError(SanitizerError):
    """A sealed shared-memory region changed while it was supposed to be
    quiescent — an out-of-band write raced the zero-copy epoch protocol."""


class RngStreamError(SanitizerError):
    """Global NumPy RNG state was touched while per-walker SeedSequence
    streams were mandated (hot scope, sanitizers armed)."""


class CollectiveOrderError(SanitizerError):
    """Workers disagreed on the sequence of collective calls — the SPMD
    contract every SharedMemComm collective relies on."""


def sanitizers_enabled() -> bool:
    """True when runtime sanitizers should run (env or forced override)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_SANITIZE", "0").lower() in (
        "1", "true", "yes", "on")


def force_sanitizers(enabled: Optional[bool]) -> None:
    """Override the env toggle (``None`` restores env behavior)."""
    global _FORCED
    _FORCED = enabled


class DtypeSanitizer:
    """Catch silent float64 upcasts of value-precision data.

    Under a mixed policy every *value* array (positions, distance rows,
    spline reads) must carry ``policy.value_dtype``; accumulators are
    checked against ``policy.accum_dtype``.  Under a full-precision
    policy the checks are vacuous (everything is float64).
    """

    def __init__(self, policy: PrecisionPolicy):
        self.policy = policy

    def check_array(self, name: str, arr) -> None:
        """Assert one value-precision ndarray has the policy dtype."""
        if not (self.policy.is_mixed and isinstance(arr, np.ndarray)):
            return
        if arr.dtype.kind == "f" and arr.dtype != self.policy.value_dtype:
            raise SanitizerError(
                f"dtype sanitizer: '{name}' is {arr.dtype.name} but the "
                f"'{self.policy.name}' policy mandates value_dtype="
                f"{self.policy.value_dtype.name} — a kernel silently "
                f"upcast (or never downcast) this buffer")

    def check_accum(self, name: str, arr) -> None:
        """Assert an accumulator array has the accumulation dtype."""
        if not isinstance(arr, np.ndarray):
            return
        if arr.dtype.kind == "f" and arr.dtype != self.policy.accum_dtype:
            raise SanitizerError(
                f"dtype sanitizer: accumulator '{name}' is "
                f"{arr.dtype.name} but per-walker sums must use "
                f"accum_dtype={self.policy.accum_dtype.name}")

    def wrap(self, fn, label: Optional[str] = None):
        """Wrap a kernel so its ndarray results are dtype-checked.

        Tuples/lists of arrays are checked element-wise; non-array
        results pass through untouched.
        """
        name = label or getattr(fn, "__qualname__", repr(fn))

        @functools.wraps(fn)
        def checked(*args, **kwargs):
            out = fn(*args, **kwargs)
            results = out if isinstance(out, (tuple, list)) else (out,)
            for i, r in enumerate(results):
                self.check_array(f"{name}[{i}]", r)
            return out

        return checked


class LayoutSanitizer:
    """Assert SoA buffers keep the layout the kernels were sold.

    * C-contiguous storage (strided views would silently de-vectorize);
    * data pointer aligned to the container's alignment;
    * zeroed padding columns (row reductions include the padding).
    """

    def check_container(self, vsc) -> None:
        """Validate a :class:`~repro.containers.vsc.VectorSoaContainer`."""
        data = vsc.data
        if not data.flags["C_CONTIGUOUS"]:
            raise SanitizerError(
                f"layout sanitizer: {vsc!r} data is not C-contiguous")
        alignment = getattr(vsc, "alignment", 0)
        if alignment and data.ctypes.data % alignment != 0:
            raise SanitizerError(
                f"layout sanitizer: {vsc!r} data pointer "
                f"0x{data.ctypes.data:x} is not {alignment}-byte aligned")
        if vsc.np > vsc.n and not np.all(data[:, vsc.n:] == 0):
            raise SanitizerError(
                f"layout sanitizer: {vsc!r} padding columns "
                f"[{vsc.n}:{vsc.np}] are not zero — row reductions over "
                f"the padded row are unsafe")

    def check_table(self, table) -> None:
        """Validate an SoA distance table's row storage, if it has any."""
        distances = getattr(table, "distances", None)
        displacements = getattr(table, "displacements", None)
        if not isinstance(distances, np.ndarray):
            return  # packed/reference tables have no row invariants
        for name, arr in (("distances", distances),
                          ("displacements", displacements)):
            if isinstance(arr, np.ndarray) and not arr.flags["C_CONTIGUOUS"]:
                raise SanitizerError(
                    f"layout sanitizer: {type(table).__name__}.{name} "
                    f"is not C-contiguous")
        if np.isnan(distances).any():
            raise SanitizerError(
                f"layout sanitizer: {type(table).__name__}.distances "
                f"contains NaN")
        # Displacement padding must stay zero (rows are reduced whole).
        n_src = getattr(table, "ns", getattr(table, "n", None))
        if isinstance(displacements, np.ndarray) and n_src is not None \
                and displacements.shape[-1] > n_src \
                and not np.all(displacements[..., n_src:] == 0):
            raise SanitizerError(
                f"layout sanitizer: {type(table).__name__}.displacements "
                f"padding beyond column {n_src} is not zero")


class ForwardUpdateChecker:
    """Cross-check incremental distance-table state against recompute.

    The forward-update scheme guarantees (a) row ``k`` is exact right
    after the sweep visits particle ``k``, and (b) for tables with
    column maintenance, entries ``k' > k`` of column ``k`` are exact.
    This checker recomputes those entries from the canonical positions
    (in double precision — the paper's periodic-recompute safeguard) and
    raises on drift beyond the table dtype's tolerance.
    """

    def __init__(self, tol_factor: float = 1e4):
        self.tol_factor = tol_factor

    def _tol(self, table) -> float:
        dtype = getattr(table, "dtype", np.dtype(np.float64))
        if np.dtype(dtype).kind != "f":
            return 1e-10
        return self.tol_factor * float(np.finfo(dtype).eps)

    def _brute_row(self, table, P, k: int) -> np.ndarray:
        source = getattr(table, "source", None)
        if source is not None:  # AB table: distances to fixed sources
            return P.lattice.min_image_dist(source.R - P.R[k])
        return P.lattice.min_image_dist(P.R - P.R[k])

    def check_row(self, table, P, k: int) -> None:
        """Row ``k`` (just updated) must match a from-scratch recompute."""
        if not isinstance(getattr(table, "distances", None), np.ndarray):
            return
        brute = self._brute_row(table, P, k)
        row = np.asarray(table.dist_row(k), dtype=np.float64)
        mask = np.ones(brute.shape[0], dtype=bool)
        if getattr(table, "source", None) is None:
            mask[k] = False  # self-distance holds the BIG sentinel
        tol = self._tol(table)
        scale = max(1.0, float(np.max(brute[mask], initial=0.0)))
        bad = ~np.isclose(row[mask], brute[mask], rtol=tol, atol=tol * scale)
        if bad.any():
            idx = int(np.flatnonzero(mask)[np.argmax(bad)])
            raise SanitizerError(
                f"forward-update checker: {type(table).__name__} row {k} "
                f"entry {idx} is stale: table={row[idx]:.8g} "
                f"recompute={brute[idx]:.8g} (tol={tol:.2g})")

    def check_column(self, table, P, k: int) -> None:
        """Forward entries ``k' > k`` of column ``k`` must be current."""
        if not getattr(table, "forward_update", False):
            return  # compute-on-the-fly tables keep no forward column
        n = table.n
        if k + 1 >= n:
            return
        brute = P.lattice.min_image_dist(P.R[k + 1:n] - P.R[k])
        col = np.asarray(table.distances[k + 1:n, k], dtype=np.float64)
        tol = self._tol(table)
        scale = max(1.0, float(np.max(brute, initial=0.0)))
        bad = ~np.isclose(col, brute, rtol=tol, atol=tol * scale)
        if bad.any():
            kp = k + 1 + int(np.argmax(bad))
            raise SanitizerError(
                f"forward-update checker: {type(table).__name__} forward "
                f"column entry d({kp}, {k}) is stale: table="
                f"{col[kp - k - 1]:.8g} recompute={brute[kp - k - 1]:.8g} "
                f"(tol={tol:.2g}) — column update after a rejected move?")


class SanitizerSuite:
    """The driver-facing bundle: all three sanitizers behind two hooks."""

    def __init__(self, policy: PrecisionPolicy):
        self.policy = policy
        self.dtype = DtypeSanitizer(policy)
        self.layout = LayoutSanitizer()
        self.forward = ForwardUpdateChecker()

    def after_accept(self, P, k: int) -> None:
        """Run after a committed PbyP move: incremental state is fresh."""
        for t in P.distance_tables:
            self.forward.check_row(t, P, k)
            self.forward.check_column(t, P, k)

    def check_state(self, P) -> None:
        """Run at measurement time: layout + dtype of all hot buffers."""
        if P.Rsoa is not None:
            self.layout.check_container(P.Rsoa)
            self.dtype.check_array(f"{P.name}.Rsoa", P.Rsoa.data)
        for t in P.distance_tables:
            self.layout.check_table(t)
            distances = getattr(t, "distances", None)
            if isinstance(distances, np.ndarray):
                self.dtype.check_array(
                    f"{type(t).__name__}.distances", distances)


class ShmRaceSanitizer:
    """Checksum shared-memory regions across their quiescent windows.

    The zero-copy contract (docs/parallel_crowds.md) divides time into
    epochs: between the parent's post-generation commit and the next
    generation command, *nobody* writes the walker-state block; and a
    trace row, once written by its generation, is frozen forever.  This
    sanitizer seals a CRC32 over each such region when its quiescent
    window opens and verifies it when the window closes — any mutation
    in between is a race that the bitwise-determinism suite might only
    catch probabilistically, surfaced here deterministically.
    """

    def __init__(self):
        #: label -> (crc32, nbytes) sealed at window open
        self._seals: Dict[str, Tuple[int, int]] = {}

    @staticmethod
    def _checksum(arr: np.ndarray) -> Tuple[int, int]:
        data = np.ascontiguousarray(arr)
        raw = data.tobytes()
        return zlib.crc32(raw), len(raw)

    def seal(self, label: str, arr: np.ndarray) -> None:
        """Open a quiescent window over ``arr`` (replaces any prior seal
        with the same label)."""
        self._seals[label] = self._checksum(arr)

    def verify(self, label: str, arr: np.ndarray) -> None:
        """Close the window: raise :class:`ShmRaceError` when the region
        changed since :meth:`seal`.  The seal is consumed either way."""
        sealed = self._seals.pop(label, None)
        if sealed is None:
            return
        current = self._checksum(arr)
        if current != sealed:
            raise ShmRaceError(
                f"shm race sanitizer: region '{label}' mutated during its "
                f"quiescent window (crc {sealed[0]:#010x} -> "
                f"{current[0]:#010x}) — an out-of-band write raced the "
                f"commit/epoch protocol (static rule R008)")

    def release(self, label: str) -> None:
        """Drop a seal without verifying (legitimate writer took over)."""
        self._seals.pop(label, None)

    def clear(self) -> None:
        """Drop every seal — used on crash recovery, where the restored
        checkpoint legitimately rewrites all shared state."""
        self._seals.clear()

    @property
    def sealed(self) -> List[str]:
        return sorted(self._seals)


class RngStreamSanitizer:
    """Make global NumPy RNG draws fail fast while armed.

    The determinism contract mandates per-walker ``SeedSequence``
    streams (walker ``w`` owns stream ``w``); a single global draw
    inside a hot loop silently shifts every subsequent stream.  Rule
    R006 catches the lexical cases — this sanitizer catches the rest
    (third-party helpers, getattr indirection) by monkeypatching the
    stateful ``np.random`` module functions with raisers.

    Stream *construction* stays allowed: ``np.random.default_rng``,
    ``SeedSequence``, ``Generator`` and the bit generators are untouched.
    Arming is reference counted at class level so nested arm/disarm
    pairs (driver around worker, suite around test) compose, and the
    patch is per-process — workers arm their own copy after spawn/fork.
    """

    #: stateful module-level entry points that draw from or reseed the
    #: process-global RandomState
    PATCHED = (
        "seed", "random", "random_sample", "rand", "randn", "randint",
        "normal", "uniform", "standard_normal", "exponential", "choice",
        "shuffle", "permutation", "gamma", "beta", "poisson", "binomial",
        "bytes", "get_state", "set_state",
    )

    _depth: int = 0
    _saved: Dict[str, object] = {}

    @classmethod
    def _raiser(cls, name: str):
        def blocked(*args, **kwargs):
            raise RngStreamError(
                f"rng stream sanitizer: np.random.{name}() called while "
                f"armed — global RNG state is forbidden in hot scopes; "
                f"draw from the walker's SeedSequence-derived Generator "
                f"(repro.rng.walker_streams) instead (static rule R006)")
        blocked.__name__ = f"blocked_{name}"
        blocked.__qualname__ = f"RngStreamSanitizer.{name}"
        return blocked

    @classmethod
    def arm(cls) -> None:
        cls._depth += 1
        if cls._depth > 1:
            return
        for name in cls.PATCHED:
            original = getattr(np.random, name, None)
            if original is None:  # pragma: no cover - numpy version skew
                continue
            cls._saved[name] = original
            setattr(np.random, name, cls._raiser(name))

    @classmethod
    def disarm(cls) -> None:
        if cls._depth == 0:
            return
        cls._depth -= 1
        if cls._depth:
            return
        for name, original in cls._saved.items():
            setattr(np.random, name, original)
        cls._saved = {}

    @classmethod
    def armed(cls) -> bool:
        return cls._depth > 0

    def __enter__(self) -> "RngStreamSanitizer":
        self.arm()
        return self

    def __exit__(self, *exc) -> None:
        self.disarm()


class CollectiveOrderChecker:
    """Verify cross-worker agreement on the collective call sequence.

    ``SharedMemComm`` ships every collective through one ``_collective``
    wire exchange, so a worker that calls ``allgather`` while its peers
    call ``allreduce`` does *not* deadlock — the payloads pair up by
    sequence number and the run completes with silently wrong results.
    Each endpoint therefore records ``(seq, kind)`` labels while
    sanitizers are armed; the driver collects the logs at shutdown and
    this checker raises on the first cross-worker divergence.
    """

    def __init__(self):
        #: rank -> [(seq, kind), ...]
        self._logs: Dict[int, List[Tuple[int, str]]] = {}

    def add_sequence(self, rank: int,
                     log: Sequence[Tuple[int, str]]) -> None:
        self._logs[int(rank)] = [(int(s), str(k)) for s, k in log]

    def verify(self) -> None:
        """Raise :class:`CollectiveOrderError` on the first collective
        where any two workers disagree on the kind, or where one worker
        participated in a collective another never reached."""
        if len(self._logs) < 2:
            return
        by_seq: Dict[int, Dict[int, str]] = {}
        for rank, log in self._logs.items():
            for seq, kind in log:
                by_seq.setdefault(seq, {})[rank] = kind
        ranks = set(self._logs)
        for seq in sorted(by_seq):
            kinds = by_seq[seq]
            if set(kinds) != ranks:
                absent = sorted(ranks - set(kinds))
                present = sorted(kinds)
                raise CollectiveOrderError(
                    f"collective order checker: collective #{seq} "
                    f"({kinds[present[0]]}) was entered by ranks "
                    f"{present} but never by ranks {absent} — the SPMD "
                    f"call sequences diverged (static rule R009)")
            if len(set(kinds.values())) > 1:
                detail = ", ".join(f"rank {r}: {kinds[r]}"
                                   for r in sorted(kinds))
                raise CollectiveOrderError(
                    f"collective order checker: collective #{seq} was "
                    f"entered with mismatched kinds ({detail}) — all "
                    f"ranks must issue the same collective in the same "
                    f"order (static rule R009)")

    @property
    def ranks(self) -> List[int]:
        return sorted(self._logs)
