"""Runtime sanitizers — the dynamic half of ``repro.lint``.

Three checkers enforce at run time what rules R001-R004 enforce at parse
time, catching violations that only materialize on real data:

* :class:`DtypeSanitizer` — raises on silent ``float64`` upcasts of
  value-precision arrays under a mixed policy (the 5N²→5N and SP-memory
  wins silently evaporate when a kernel upcasts).
* :class:`LayoutSanitizer` — asserts SoA buffers stay C-contiguous and
  cache-aligned with zeroed padding (reductions over padded rows are only
  safe when the padding is zero).
* :class:`ForwardUpdateChecker` — cross-checks incrementally-updated
  distance-table rows/columns against a from-scratch recompute: the
  paper's drift safeguard for the forward-update scheme (Fig. 6b) and
  single-precision accumulation error.

All three are toggled by ``REPRO_SANITIZE=1`` (see
:func:`sanitizers_enabled`); the QMC drivers consult that flag and run a
:class:`SanitizerSuite` after accepted moves and at measurement time.
"""

from __future__ import annotations

import functools
import os
from typing import Optional

import numpy as np

from repro.precision.policy import PrecisionPolicy

#: process-wide override used by the pytest ``sanitize`` fixture; None
#: defers to the REPRO_SANITIZE environment variable.
_FORCED: Optional[bool] = None


class SanitizerError(AssertionError):
    """An invariant the lint subsystem enforces was violated at run time."""


def sanitizers_enabled() -> bool:
    """True when runtime sanitizers should run (env or forced override)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_SANITIZE", "0").lower() in (
        "1", "true", "yes", "on")


def force_sanitizers(enabled: Optional[bool]) -> None:
    """Override the env toggle (``None`` restores env behavior)."""
    global _FORCED
    _FORCED = enabled


class DtypeSanitizer:
    """Catch silent float64 upcasts of value-precision data.

    Under a mixed policy every *value* array (positions, distance rows,
    spline reads) must carry ``policy.value_dtype``; accumulators are
    checked against ``policy.accum_dtype``.  Under a full-precision
    policy the checks are vacuous (everything is float64).
    """

    def __init__(self, policy: PrecisionPolicy):
        self.policy = policy

    def check_array(self, name: str, arr) -> None:
        """Assert one value-precision ndarray has the policy dtype."""
        if not (self.policy.is_mixed and isinstance(arr, np.ndarray)):
            return
        if arr.dtype.kind == "f" and arr.dtype != self.policy.value_dtype:
            raise SanitizerError(
                f"dtype sanitizer: '{name}' is {arr.dtype.name} but the "
                f"'{self.policy.name}' policy mandates value_dtype="
                f"{self.policy.value_dtype.name} — a kernel silently "
                f"upcast (or never downcast) this buffer")

    def check_accum(self, name: str, arr) -> None:
        """Assert an accumulator array has the accumulation dtype."""
        if not isinstance(arr, np.ndarray):
            return
        if arr.dtype.kind == "f" and arr.dtype != self.policy.accum_dtype:
            raise SanitizerError(
                f"dtype sanitizer: accumulator '{name}' is "
                f"{arr.dtype.name} but per-walker sums must use "
                f"accum_dtype={self.policy.accum_dtype.name}")

    def wrap(self, fn, label: Optional[str] = None):
        """Wrap a kernel so its ndarray results are dtype-checked.

        Tuples/lists of arrays are checked element-wise; non-array
        results pass through untouched.
        """
        name = label or getattr(fn, "__qualname__", repr(fn))

        @functools.wraps(fn)
        def checked(*args, **kwargs):
            out = fn(*args, **kwargs)
            results = out if isinstance(out, (tuple, list)) else (out,)
            for i, r in enumerate(results):
                self.check_array(f"{name}[{i}]", r)
            return out

        return checked


class LayoutSanitizer:
    """Assert SoA buffers keep the layout the kernels were sold.

    * C-contiguous storage (strided views would silently de-vectorize);
    * data pointer aligned to the container's alignment;
    * zeroed padding columns (row reductions include the padding).
    """

    def check_container(self, vsc) -> None:
        """Validate a :class:`~repro.containers.vsc.VectorSoaContainer`."""
        data = vsc.data
        if not data.flags["C_CONTIGUOUS"]:
            raise SanitizerError(
                f"layout sanitizer: {vsc!r} data is not C-contiguous")
        alignment = getattr(vsc, "alignment", 0)
        if alignment and data.ctypes.data % alignment != 0:
            raise SanitizerError(
                f"layout sanitizer: {vsc!r} data pointer "
                f"0x{data.ctypes.data:x} is not {alignment}-byte aligned")
        if vsc.np > vsc.n and not np.all(data[:, vsc.n:] == 0):
            raise SanitizerError(
                f"layout sanitizer: {vsc!r} padding columns "
                f"[{vsc.n}:{vsc.np}] are not zero — row reductions over "
                f"the padded row are unsafe")

    def check_table(self, table) -> None:
        """Validate an SoA distance table's row storage, if it has any."""
        distances = getattr(table, "distances", None)
        displacements = getattr(table, "displacements", None)
        if not isinstance(distances, np.ndarray):
            return  # packed/reference tables have no row invariants
        for name, arr in (("distances", distances),
                          ("displacements", displacements)):
            if isinstance(arr, np.ndarray) and not arr.flags["C_CONTIGUOUS"]:
                raise SanitizerError(
                    f"layout sanitizer: {type(table).__name__}.{name} "
                    f"is not C-contiguous")
        if np.isnan(distances).any():
            raise SanitizerError(
                f"layout sanitizer: {type(table).__name__}.distances "
                f"contains NaN")
        # Displacement padding must stay zero (rows are reduced whole).
        n_src = getattr(table, "ns", getattr(table, "n", None))
        if isinstance(displacements, np.ndarray) and n_src is not None \
                and displacements.shape[-1] > n_src \
                and not np.all(displacements[..., n_src:] == 0):
            raise SanitizerError(
                f"layout sanitizer: {type(table).__name__}.displacements "
                f"padding beyond column {n_src} is not zero")


class ForwardUpdateChecker:
    """Cross-check incremental distance-table state against recompute.

    The forward-update scheme guarantees (a) row ``k`` is exact right
    after the sweep visits particle ``k``, and (b) for tables with
    column maintenance, entries ``k' > k`` of column ``k`` are exact.
    This checker recomputes those entries from the canonical positions
    (in double precision — the paper's periodic-recompute safeguard) and
    raises on drift beyond the table dtype's tolerance.
    """

    def __init__(self, tol_factor: float = 1e4):
        self.tol_factor = tol_factor

    def _tol(self, table) -> float:
        dtype = getattr(table, "dtype", np.dtype(np.float64))
        if np.dtype(dtype).kind != "f":
            return 1e-10
        return self.tol_factor * float(np.finfo(dtype).eps)

    def _brute_row(self, table, P, k: int) -> np.ndarray:
        source = getattr(table, "source", None)
        if source is not None:  # AB table: distances to fixed sources
            return P.lattice.min_image_dist(source.R - P.R[k])
        return P.lattice.min_image_dist(P.R - P.R[k])

    def check_row(self, table, P, k: int) -> None:
        """Row ``k`` (just updated) must match a from-scratch recompute."""
        if not isinstance(getattr(table, "distances", None), np.ndarray):
            return
        brute = self._brute_row(table, P, k)
        row = np.asarray(table.dist_row(k), dtype=np.float64)
        mask = np.ones(brute.shape[0], dtype=bool)
        if getattr(table, "source", None) is None:
            mask[k] = False  # self-distance holds the BIG sentinel
        tol = self._tol(table)
        scale = max(1.0, float(np.max(brute[mask], initial=0.0)))
        bad = ~np.isclose(row[mask], brute[mask], rtol=tol, atol=tol * scale)
        if bad.any():
            idx = int(np.flatnonzero(mask)[np.argmax(bad)])
            raise SanitizerError(
                f"forward-update checker: {type(table).__name__} row {k} "
                f"entry {idx} is stale: table={row[idx]:.8g} "
                f"recompute={brute[idx]:.8g} (tol={tol:.2g})")

    def check_column(self, table, P, k: int) -> None:
        """Forward entries ``k' > k`` of column ``k`` must be current."""
        if not getattr(table, "forward_update", False):
            return  # compute-on-the-fly tables keep no forward column
        n = table.n
        if k + 1 >= n:
            return
        brute = P.lattice.min_image_dist(P.R[k + 1:n] - P.R[k])
        col = np.asarray(table.distances[k + 1:n, k], dtype=np.float64)
        tol = self._tol(table)
        scale = max(1.0, float(np.max(brute, initial=0.0)))
        bad = ~np.isclose(col, brute, rtol=tol, atol=tol * scale)
        if bad.any():
            kp = k + 1 + int(np.argmax(bad))
            raise SanitizerError(
                f"forward-update checker: {type(table).__name__} forward "
                f"column entry d({kp}, {k}) is stale: table="
                f"{col[kp - k - 1]:.8g} recompute={brute[kp - k - 1]:.8g} "
                f"(tol={tol:.2g}) — column update after a rejected move?")


class SanitizerSuite:
    """The driver-facing bundle: all three sanitizers behind two hooks."""

    def __init__(self, policy: PrecisionPolicy):
        self.policy = policy
        self.dtype = DtypeSanitizer(policy)
        self.layout = LayoutSanitizer()
        self.forward = ForwardUpdateChecker()

    def after_accept(self, P, k: int) -> None:
        """Run after a committed PbyP move: incremental state is fresh."""
        for t in P.distance_tables:
            self.forward.check_row(t, P, k)
            self.forward.check_column(t, P, k)

    def check_state(self, P) -> None:
        """Run at measurement time: layout + dtype of all hot buffers."""
        if P.Rsoa is not None:
            self.layout.check_container(P.Rsoa)
            self.dtype.check_array(f"{P.name}.Rsoa", P.Rsoa.data)
        for t in P.distance_tables:
            self.layout.check_table(t)
            distances = getattr(t, "distances", None)
            if isinstance(distances, np.ndarray):
                self.dtype.check_array(
                    f"{type(t).__name__}.distances", distances)
