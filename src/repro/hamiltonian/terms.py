"""Local Hamiltonian terms: kinetic and Coulomb."""

from __future__ import annotations

import numpy as np

from repro.perfmodel.opcount import OPS
from repro.profiling.profiler import PROFILER


class KineticEnergy:
    """-(1/2) sum_i (nabla_i^2 Psi)/Psi = -(1/2) sum_i (L_i + |G_i|^2),
    where G/L are grad/lap of log Psi accumulated on the ParticleSet."""

    name = "Kinetic"

    def evaluate(self, P, twf) -> float:
        with PROFILER.timer("Other"):
            g2 = np.sum(P.G * P.G, axis=1)
            val = -0.5 * float(np.sum(P.L + g2))
            OPS.record("Other", flops=5.0 * P.n, rbytes=32.0 * P.n,
                       wbytes=8.0)
            return val


class CoulombEE:
    """Electron-electron repulsion sum_{i<j} 1/r_ij over the AA table.

    Uses the freshly-evaluated table rows (which is why the optimized
    code retains the O(N^2) distance storage for Hamiltonian reuse,
    Sec. 7.5).
    """

    name = "ElecElec"

    def __init__(self, table_index: int = 0):
        self.table_index = table_index

    def evaluate(self, P, twf) -> float:
        with PROFILER.timer("Other"):
            table = P.distance_tables[self.table_index]
            total = 0.0
            for i in range(P.n):
                row = np.asarray(table.dist_row(i), dtype=np.float64)
                total += float(np.sum(1.0 / row[:i]))
            OPS.record("Other", flops=2.0 * P.n * P.n / 2,
                       rbytes=8.0 * P.n * P.n / 2, wbytes=8.0)
            return total


class CoulombEI:
    """Electron-ion attraction -sum_{k,I} Z_I / r_kI over the AB table."""

    name = "ElecIon"

    def __init__(self, ion_charges: np.ndarray, table_index: int = 1):
        self.charges = np.asarray(ion_charges, dtype=np.float64)
        self.table_index = table_index

    def evaluate(self, P, twf) -> float:
        with PROFILER.timer("Other"):
            table = P.distance_tables[self.table_index]
            total = 0.0
            for k in range(P.n):
                row = np.asarray(table.dist_row(k), dtype=np.float64)
                total -= float(np.sum(self.charges / row))
            OPS.record("Other", flops=2.0 * P.n * self.charges.size,
                       rbytes=8.0 * P.n * self.charges.size, wbytes=8.0)
            return total


class IonIonEnergy:
    """Constant ion-ion repulsion sum_{I<J} Z_I Z_J / r_IJ (computed once)."""

    name = "IonIon"

    def __init__(self, ions, lattice):
        R = ions.R
        Z = ions.charges()
        n = R.shape[0]
        total = 0.0
        for i in range(n):
            dr = R[i + 1:] - R[i]
            if lattice.periodic:
                dr = lattice.min_image_disp(dr)
            d = np.sqrt(np.sum(dr * dr, axis=1))
            total += float(np.sum(Z[i] * Z[i + 1:] / d))
        self.value = total

    def evaluate(self, P, twf) -> float:
        return self.value
