"""Hamiltonian terms and the local-energy evaluator (Eq. 7).

E_L = -(1/2) sum_i (L_i + |G_i|^2) + sum_{i<j} 1/r_ij
      - sum_{k,I} Z_I / r_kI + V_II + V_NL

The non-local pseudopotential term approximates the angular integral by
a quadrature on a spherical shell around each ion (Fahy et al.),
requiring wavefunction *ratio* evaluations for every electron inside an
ion's cutoff — the ratio-heavy code path the paper's miniapps exercise.

Periodic Coulomb sums use the minimum-image convention (not a full
Ewald); DESIGN.md documents this substitution — the kernels' compute
and data-access patterns, which are what the paper measures, are
identical.
"""

from repro.hamiltonian.terms import (
    KineticEnergy, CoulombEE, CoulombEI, IonIonEnergy,
)
from repro.hamiltonian.nlpp import NonLocalPP, sphere_quadrature
from repro.hamiltonian.local_energy import Hamiltonian

__all__ = [
    "KineticEnergy", "CoulombEE", "CoulombEI", "IonIonEnergy",
    "NonLocalPP", "sphere_quadrature", "Hamiltonian",
]
