"""Non-local pseudopotential via spherical-shell quadrature (Sec. 3).

For every (electron k, ion I) pair with r_kI inside the channel cutoff,
the angular projector integral is approximated by a quadrature over
points on the sphere of radius r_kI centered on the ion:

    V_NL += v_l(r) * (2l+1)/(4 pi) * sum_q w_q P_l(cos theta_q)
            * Psi(..., r_q, ...) / Psi(..., r_k, ...)

Each quadrature point costs one wavefunction *ratio* (Eq. 4) — the same
kernel as a particle move but without acceptance, which is why NLPP
pressure shows up in the DistTable/Jastrow/Bspline-v profiles.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.perfmodel.opcount import OPS
from repro.profiling.profiler import PROFILER


def sphere_quadrature(npoints: int = 12) -> tuple[np.ndarray, np.ndarray]:
    """Quadrature directions and weights on the unit sphere.

    Supports the octahedron rule (6 points) and the icosahedron vertex
    rule (12 points) — both integrate spherical harmonics up to l=2 /
    l=5 exactly, matching QMCPACK's standard grids.
    """
    if npoints == 6:
        dirs = np.array([
            [1, 0, 0], [-1, 0, 0],
            [0, 1, 0], [0, -1, 0],
            [0, 0, 1], [0, 0, -1],
        ], dtype=np.float64)
    elif npoints == 12:
        phi = (1.0 + math.sqrt(5.0)) / 2.0
        raw = []
        for s1 in (1, -1):
            for s2 in (1, -1):
                raw.append([0.0, s1 * 1.0, s2 * phi])
                raw.append([s1 * 1.0, s2 * phi, 0.0])
                raw.append([s1 * phi, 0.0, s2 * 1.0])
        dirs = np.array(raw, dtype=np.float64)
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    else:
        raise ValueError(f"unsupported quadrature size {npoints}")
    weights = np.full(len(dirs), 1.0 / len(dirs))
    return dirs, weights


def legendre(l: int, x):
    """Legendre polynomial P_l, vectorized, for the low channels used."""
    if l == 0:
        return np.ones_like(np.asarray(x, dtype=np.float64))
    if l == 1:
        return np.asarray(x, dtype=np.float64)
    if l == 2:
        x = np.asarray(x, dtype=np.float64)
        return 1.5 * x * x - 0.5
    raise ValueError(f"channel l={l} not supported")


class NonLocalPP:
    """One non-local channel shared by a set of ions.

    Radial form v_l(r) = v0 * exp(-(r/width)^2), cut off at ``rcut`` —
    a Gaussian-localized projector with the shape of a real
    norm-conserving PP's non-local part.
    """

    name = "NonLocalECP"

    def __init__(self, ions, ion_indices: Sequence[int], l: int = 1,
                 v0: float = 1.0, width: float = 0.8, rcut: float = 1.2,
                 npoints: int = 12, table_index: int = 1,
                 rng: np.random.Generator | None = None):
        self.ions = ions
        self.ion_indices = np.asarray(ion_indices, dtype=np.int64)
        self.l = l
        self.v0 = float(v0)
        self.width = float(width)
        self.rcut = float(rcut)
        self.table_index = table_index
        self.dirs, self.weights = sphere_quadrature(npoints)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def radial(self, r):
        return self.v0 * np.exp(-np.square(np.asarray(r) / self.width))

    def evaluate(self, P, twf) -> float:
        """Sum the channel over all in-range (electron, ion) pairs.

        Randomly rotating the quadrature frame per evaluation removes the
        grid bias, as production codes do.
        """
        table = P.distance_tables[self.table_index]
        rot = self._random_rotation()
        dirs = self.dirs @ rot.T
        total = 0.0
        prefac = (2 * self.l + 1)
        for k in range(P.n):
            row_r = np.asarray(table.dist_row(k), dtype=np.float64)
            row_dr = table.disp_row(k)
            for I in self.ion_indices:
                d = row_r[I]
                if d >= self.rcut:
                    continue
                # Unit vector from ion to electron: -disp(k->I)/d.
                if isinstance(row_dr, list):
                    dv = np.array([row_dr[I][0], row_dr[I][1], row_dr[I][2]])
                else:
                    dv = np.asarray(row_dr[:, I], dtype=np.float64)
                u_old = -dv / d
                ion_pos = self.ions.R[I]
                cosines = dirs @ u_old
                pl = legendre(self.l, cosines)
                with PROFILER.timer("NLPP"):
                    OPS.record("NLPP", flops=30.0 * len(dirs),
                               rbytes=24.0 * len(dirs), wbytes=8.0)
                acc = 0.0
                for q in range(len(dirs)):
                    r_q = ion_pos + d * dirs[q]
                    P.make_move(k, P.lattice.wrap(r_q[None, :])[0]
                                if P.lattice.periodic else r_q)
                    rho = twf.ratio(P, k)
                    twf.reject_move(P, k)
                    P.reject_move(k)
                    acc += self.weights[q] * pl[q] * rho
                total += float(self.radial(d)) * prefac * acc
        return total

    def _random_rotation(self) -> np.ndarray:
        """Uniform random rotation matrix (QR of a Gaussian matrix)."""
        m = self.rng.normal(size=(3, 3))
        q, r = np.linalg.qr(m)
        q *= np.sign(np.diag(r))
        if np.linalg.det(q) < 0:
            q[:, 0] = -q[:, 0]
        return q
