"""Non-local pseudopotential via spherical-shell quadrature (Sec. 3).

For every (electron k, ion I) pair with r_kI inside the channel cutoff,
the angular projector integral is approximated by a quadrature over
points on the sphere of radius r_kI centered on the ion:

    V_NL += v_l(r) * (2l+1)/(4 pi) * sum_q w_q P_l(cos theta_q)
            * Psi(..., r_q, ...) / Psi(..., r_k, ...)

Each quadrature point costs one wavefunction *ratio* (Eq. 4) — the same
kernel as a particle move but without acceptance, which is why NLPP
pressure shows up in the DistTable/Jastrow/Bspline-v profiles.

Two engines share the physics:

* the **virtual-particle** engine (default, ``mode="vp"``): gather all
  in-range pairs, materialize every quadrature position into one flat
  ``(Nvp, 3)`` :class:`VirtualParticleSet` slab, and evaluate all ratios
  through the ratio-only ``twf.ratios_vp`` API — no ``make_move`` /
  ``reject_move`` round-trips, no per-point walker-state mutation
  (QMCPACK's ``VirtualParticleSet`` + ``mw_evaluateRatios`` design);
* the **scalar loop** engine (``mode="loop"`` /
  :meth:`NonLocalPP.evaluate_reference`): one temp-move ratio per
  quadrature point, kept as the differential oracle.

The per-evaluation random rotation of the quadrature frame removes grid
bias.  When a :class:`QuadratureRotations` stream is attached the
rotation is a *stateless* function of ``(walker, serial)`` — independent
of crowd membership and draw history — so batched, reference and
parallel-crowd evaluations of the same walker/step see the identical
frame.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.metrics.registry import METRICS
from repro.perfmodel.opcount import OPS
from repro.profiling.profiler import PROFILER


def sphere_quadrature(npoints: int = 12) -> tuple[np.ndarray, np.ndarray]:
    """Quadrature directions and weights on the unit sphere.

    Supports the octahedron rule (6 points) and the icosahedron vertex
    rule (12 points) — both integrate spherical harmonics up to l=2 /
    l=5 exactly, matching QMCPACK's standard grids.
    """
    if npoints == 6:
        dirs = np.array([
            [1, 0, 0], [-1, 0, 0],
            [0, 1, 0], [0, -1, 0],
            [0, 0, 1], [0, 0, -1],
        ], dtype=np.float64)
    elif npoints == 12:
        phi = (1.0 + math.sqrt(5.0)) / 2.0
        raw = []
        for s1 in (1, -1):
            for s2 in (1, -1):
                raw.append([0.0, s1 * 1.0, s2 * phi])
                raw.append([s1 * 1.0, s2 * phi, 0.0])
                raw.append([s1 * phi, 0.0, s2 * 1.0])
        dirs = np.array(raw, dtype=np.float64)
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    else:
        raise ValueError(f"unsupported quadrature size {npoints}")
    weights = np.full(len(dirs), 1.0 / len(dirs))
    return dirs, weights


def legendre(l: int, x):
    """Legendre polynomial P_l, vectorized, for the low channels used."""
    if l == 0:
        return np.ones_like(np.asarray(x, dtype=np.float64))
    if l == 1:
        return np.asarray(x, dtype=np.float64)
    if l == 2:
        x = np.asarray(x, dtype=np.float64)
        return 1.5 * x * x - 0.5
    raise ValueError(f"channel l={l} not supported")


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniform random rotation matrix (QR of a Gaussian matrix)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


class QuadratureRotations:
    """Stateless walker-indexed quadrature-rotation streams.

    ``rotation(walker, serial)`` derives a fresh generator from
    ``SeedSequence(master_seed, spawn_key=(walker, serial))`` — the same
    spawning discipline as the per-walker move RNGs of the batched
    driver — so the rotation is a pure function of the (walker,
    evaluation-serial) pair.  Crowd membership, evaluation order and
    prior draws cannot perturb it, which is what keeps parallel crowds'
    NLPP traces bitwise identical to the serial reference.

    Serial contract: the per-walker reference path uses serial 0 for the
    setup evaluation and serial ``s`` for step ``s``; the batched crowd
    engine bumps its serial once per Hamiltonian evaluation so its first
    measurement (step 1) also lands on serial 1.
    """

    def __init__(self, master_seed: int):
        self.master_seed = int(master_seed)

    def rotation(self, walker: int, serial: int) -> np.ndarray:
        ss = np.random.SeedSequence(self.master_seed,
                                    spawn_key=(int(walker), int(serial)))
        return random_rotation(np.random.default_rng(ss))


class VirtualParticleSet:
    """Flat slab of virtual quadrature positions for one walker.

    All in-range (electron, ion) pairs of one NLPP evaluation,
    materialized as ``npairs * nq`` ratio-only "virtual moves":

    * ``pair_k`` / ``pair_ion`` / ``pair_dist`` — ``(Npair,)`` electron
      index, ion index and pair distance;
    * ``owners`` — ``(Nvp,)`` electron owning each virtual position
      (``pair_k`` repeated ``nq`` times);
    * ``positions`` — ``(Nvp, 3)`` float64 virtual positions, already
      wrapped into the cell.

    No walker state is written while the slab is evaluated: components
    consume it through ``ratio_at`` / ``ratios_vp`` only.
    """

    __slots__ = ("pair_k", "pair_ion", "pair_dist", "owners", "positions",
                 "nq")

    def __init__(self, pair_k, pair_ion, pair_dist, owners, positions, nq):
        self.pair_k = pair_k
        self.pair_ion = pair_ion
        self.pair_dist = pair_dist
        self.owners = owners
        self.positions = positions
        self.nq = int(nq)

    @property
    def npairs(self) -> int:
        return len(self.pair_k)

    @property
    def nvp(self) -> int:
        return len(self.owners)


class NonLocalPP:
    """One non-local channel shared by a set of ions.

    Radial form v_l(r) = v0 * exp(-(r/width)^2), cut off at ``rcut`` —
    a Gaussian-localized projector with the shape of a real
    norm-conserving PP's non-local part.
    """

    name = "NonLocalECP"

    def __init__(self, ions, ion_indices: Sequence[int], l: int = 1,
                 v0: float = 1.0, width: float = 0.8, rcut: float = 1.2,
                 npoints: int = 12, table_index: int = 1,
                 rng: np.random.Generator | None = None,
                 mode: str = "vp"):
        if mode not in ("vp", "loop"):
            raise ValueError(f"unknown NLPP mode {mode!r}")
        self.ions = ions
        self.ion_indices = np.asarray(ion_indices, dtype=np.int64)
        self.l = l
        self.v0 = float(v0)
        self.width = float(width)
        self.rcut = float(rcut)
        self.table_index = table_index
        self.dirs, self.weights = sphere_quadrature(npoints)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.mode = mode
        # Optional stateless rotation streams (QuadratureRotations) and
        # the (walker, serial) pair the next evaluation is keyed on.
        self.rotations: QuadratureRotations | None = None
        self.walker = 0
        self.serial = 0

    def radial(self, r):
        return self.v0 * np.exp(-np.square(np.asarray(r) / self.width))

    # -- rotation bookkeeping ----------------------------------------------------
    def use_rotations(self, rotations: QuadratureRotations,
                      walker: int = 0) -> None:
        """Attach stateless rotation streams (replaces the legacy rng)."""
        self.rotations = rotations
        self.walker = int(walker)
        self.serial = 0

    def set_walker(self, walker: int, serial: int) -> None:
        """Key the next evaluation's rotation on (walker, serial)."""
        self.walker = int(walker)
        self.serial = int(serial)

    def _draw_rotation(self) -> np.ndarray:
        if self.rotations is not None:
            return self.rotations.rotation(self.walker, self.serial)
        return random_rotation(self.rng)

    # -- evaluation --------------------------------------------------------------
    def evaluate(self, P, twf) -> float:  # repro: hot
        """Sum the channel over all in-range (electron, ion) pairs.

        Randomly rotating the quadrature frame per evaluation removes the
        grid bias, as production codes do.  Exactly one rotation is drawn
        per call regardless of how many pairs are in range.
        """
        with PROFILER.timer("NLPP"):
            rot = self._draw_rotation()
            if self.mode == "vp":
                return self._evaluate_vp(P, twf, rot)
            return self._evaluate_loop(P, twf, rot)

    def evaluate_reference(self, P, twf) -> float:
        """The scalar per-point oracle under the same rotation contract —
        one temp-move wavefunction ratio per quadrature point."""
        with PROFILER.timer("NLPP"):
            return self._evaluate_loop(P, twf, self._draw_rotation())

    def build_vps(self, P, dirs_rot: np.ndarray) -> VirtualParticleSet:
        """Gather in-range pairs and materialize the virtual-particle slab."""
        table = P.distance_tables[self.table_index]
        sel_k = []
        sel_ion = []
        sel_d = []
        sel_u = []
        for k in range(P.n):
            dvals = table.dist_row_array(k)[self.ion_indices]
            hits = np.nonzero(dvals < self.rcut)[0]
            if hits.size == 0:
                continue
            ions_hit = self.ion_indices[hits]
            # Promote the stored (table-precision) rows to accumulation
            # precision before the divide, as the scalar oracle does.
            d64 = np.asarray(dvals[hits], dtype=np.float64)  # repro: noqa R002
            dv64 = np.asarray(
                table.disp_row_array(k)[:, ions_hit],
                dtype=np.float64)  # repro: noqa R002
            sel_k.append(np.full(hits.size, k, dtype=np.int64))
            sel_ion.append(ions_hit)
            sel_d.append(d64)
            sel_u.append(-(dv64 / d64).T)        # unit vectors ion -> electron
        if not sel_k:
            empty3 = np.empty((0, 3))
            return VirtualParticleSet(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.empty(0), np.empty(0, dtype=np.int64), empty3,
                len(dirs_rot))
        pair_k = np.concatenate(sel_k)
        pair_ion = np.concatenate(sel_ion)
        pair_d = np.concatenate(sel_d)
        nq = len(dirs_rot)
        slab = (self.ions.R[pair_ion][:, None, :]
                + pair_d[:, None, None] * dirs_rot[None, :, :])
        slab = slab.reshape(-1, 3)
        if P.lattice.periodic:
            slab = P.lattice.wrap(slab)
        owners = np.repeat(pair_k, nq)
        vps = VirtualParticleSet(pair_k, pair_ion, pair_d, owners, slab, nq)
        # Stash the per-pair unit vectors for the Legendre weights.
        self._pair_units = np.concatenate(sel_u, axis=0)
        return vps

    def _evaluate_vp(self, P, twf, rot: np.ndarray) -> float:  # repro: hot
        """Virtual-particle engine: one fused ratio evaluation per slab."""
        dirs_rot = self.dirs @ rot.T
        vps = self.build_vps(P, dirs_rot)
        if vps.npairs == 0:
            return 0.0
        cosines = self._pair_units @ dirs_rot.T          # (Npair, nq)
        pl = legendre(self.l, cosines)
        rho = twf.ratios_vp(P, vps.owners, vps.positions)
        rho = rho.reshape(vps.npairs, vps.nq)
        acc = (self.weights[None, :] * pl * rho).sum(axis=1)
        contrib = self.radial(vps.pair_dist) * (2 * self.l + 1) * acc
        METRICS.count("nlpp_pairs", vps.npairs)
        METRICS.count("nlpp_ratio_points", vps.nvp)
        METRICS.add_bytes(32 * vps.nvp)
        OPS.record("NLPP", flops=30.0 * vps.nvp, rbytes=24.0 * vps.nvp,
                   wbytes=8.0 * vps.npairs)
        return float(np.sum(contrib))

    def _evaluate_loop(self, P, twf, rot: np.ndarray) -> float:
        """Scalar oracle: a temp-move ratio round-trip per quadrature point."""
        table = P.distance_tables[self.table_index]
        dirs = self.dirs @ rot.T
        total = 0.0
        prefac = (2 * self.l + 1)
        for k in range(P.n):
            drow = table.dist_row_array(k)
            vrow = table.disp_row_array(k)
            for I in self.ion_indices:
                d = float(drow[I])
                if d >= self.rcut:
                    continue
                # Unit vector from ion to electron: -disp(k->I)/d.
                dv = np.asarray(vrow[:, I], dtype=np.float64)
                u_old = -dv / d
                ion_pos = self.ions.R[I]
                cosines = dirs @ u_old
                pl = legendre(self.l, cosines)
                METRICS.count("nlpp_pairs", 1)
                METRICS.count("nlpp_ratio_points", len(dirs))
                METRICS.add_bytes(32 * len(dirs))
                OPS.record("NLPP", flops=30.0 * len(dirs),
                           rbytes=24.0 * len(dirs), wbytes=8.0)
                acc = 0.0
                for q in range(len(dirs)):
                    r_q = ion_pos + d * dirs[q]
                    P.make_move(k, P.lattice.wrap(r_q[None, :])[0]
                                if P.lattice.periodic else r_q)
                    rho = twf.ratio(P, k)
                    twf.reject_move(P, k)
                    P.reject_move(k)
                    acc += self.weights[q] * pl[q] * rho
                total += float(self.radial(d)) * prefac * acc
        return total

    def _random_rotation(self) -> np.ndarray:
        """Uniform random rotation from the legacy per-instance rng."""
        return random_rotation(self.rng)
