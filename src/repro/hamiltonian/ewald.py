"""Ewald summation for periodic Coulomb interactions.

The minimum-image sums in :mod:`repro.hamiltonian.terms` are the cheap
approximation; production QMC codes evaluate the periodic Coulomb
interaction with an Ewald decomposition (QMCPACK's ``CoulombPBCAA/AB``).
This module implements the classic split

    1/r  =  erfc(alpha r)/r  (real space, short ranged)
          + erf(alpha r)/r   (reciprocal space, smooth)

for a neutral collection of point charges in a general cell:

    E = E_real + E_recip + E_self + E_background

* real space: sum over minimum images (the cutoff is chosen so
  erfc(alpha r_ws) is negligible);
* reciprocal space: sum over G-vectors with the Gaussian screening
  factor exp(-G^2/4 alpha^2);
* self term: -alpha/sqrt(pi) sum q_i^2;
* background: -pi/(2 alpha^2 V) (sum q_i)^2 — zero for neutral systems.

Validated against the Madelung constant of rock salt in the tests.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc

from repro.lattice.cell import CrystalLattice
from repro.perfmodel.opcount import OPS
from repro.profiling.profiler import PROFILER


class EwaldHandler:
    """Precomputed Ewald machinery for one cell.

    Parameters
    ----------
    lattice:
        Periodic simulation cell.
    alpha:
        Splitting parameter; default scales with the Wigner-Seitz radius
        so the real-space part converges within the first shell.
    gcut_factor:
        Reciprocal cutoff |G|max = gcut_factor * (2 alpha), giving the
        screening factor exp(-gcut^2 / 4 alpha^2) ~ e^{-gcut_factor^2}.
    """

    def __init__(self, lattice: CrystalLattice, alpha: float | None = None,
                 gcut_factor: float = 3.2):
        if not lattice.periodic:
            raise ValueError("Ewald requires a periodic cell")
        self.lattice = lattice
        rws = lattice.wigner_seitz_radius
        # erfc(alpha * rws) ~ 1e-7 with alpha * rws ~ 3.8
        self.alpha = alpha if alpha is not None else 3.8 / rws
        self.gcut = gcut_factor * 2.0 * self.alpha
        self.gvecs, self.gfactors = self._build_gspace()

    def _build_gspace(self):
        """Enumerate G != 0 with |G| <= gcut and their Ewald factors
        4 pi / (V G^2) exp(-G^2 / 4 alpha^2) (half space: use cos form
        over the full set, which double counts symmetric pairs — so keep
        the full set and the plain 1/2 prefactor folded into usage)."""
        recip = self.lattice.reciprocal
        # Bounding box of integer indices.
        nmax = [int(np.ceil(self.gcut / np.linalg.norm(recip[i]) * 1.5)) + 1
                for i in range(3)]
        ij = np.mgrid[-nmax[0]:nmax[0] + 1,
                      -nmax[1]:nmax[1] + 1,
                      -nmax[2]:nmax[2] + 1].reshape(3, -1).T
        ij = ij[np.any(ij != 0, axis=1)]
        g = ij @ recip
        g2 = np.sum(g * g, axis=1)
        keep = g2 <= self.gcut ** 2
        g = g[keep]
        g2 = g2[keep]
        vol = self.lattice.volume
        factors = (4.0 * math.pi / vol) * np.exp(
            -g2 / (4.0 * self.alpha ** 2)) / g2
        return g, factors

    # -- energy pieces ------------------------------------------------------------
    def real_space(self, R: np.ndarray, q: np.ndarray) -> float:
        """Short-range erfc part over minimum images, i<j pairs."""
        n = R.shape[0]
        total = 0.0
        for i in range(n):
            dr = self.lattice.min_image_disp(R[i + 1:] - R[i])
            d = np.sqrt(np.sum(dr * dr, axis=1))
            total += float(np.sum(q[i] * q[i + 1:] * erfc(self.alpha * d)
                                  / d))
        OPS.record("Other", flops=12.0 * n * n / 2, rbytes=8.0 * n * n / 2,
                   wbytes=8.0)
        return total

    def reciprocal_space(self, R: np.ndarray, q: np.ndarray) -> float:
        """Smooth long-range part via structure factors."""
        phases = R @ self.gvecs.T  # (n, ngvec)
        re = q @ np.cos(phases)
        im = q @ np.sin(phases)
        s2 = re * re + im * im
        OPS.record("Other", flops=6.0 * R.shape[0] * self.gvecs.shape[0],
                   rbytes=8.0 * self.gvecs.shape[0], wbytes=8.0)
        return 0.5 * float(np.sum(self.gfactors * s2))

    def self_energy(self, q: np.ndarray) -> float:
        return -self.alpha / math.sqrt(math.pi) * float(np.sum(q * q))

    def background(self, q: np.ndarray) -> float:
        qtot = float(np.sum(q))
        return -math.pi / (2.0 * self.alpha ** 2 * self.lattice.volume) \
            * qtot * qtot

    def energy(self, R: np.ndarray, q: np.ndarray) -> float:
        """Total periodic Coulomb energy of charges q at positions R."""
        R = np.asarray(R, dtype=np.float64)
        q = np.asarray(q, dtype=np.float64)
        with PROFILER.timer("Other"):
            return (self.real_space(R, q) + self.reciprocal_space(R, q)
                    + self.self_energy(q) + self.background(q))


class EwaldCoulomb:
    """Hamiltonian term: full Ewald electron-electron + electron-ion +
    ion-ion energy (the production CoulombPBC path).

    Note: evaluates from particle positions each measurement; the
    minimum-image terms in :mod:`repro.hamiltonian.terms` remain the
    default for speed, this term is the high-accuracy option.
    """

    name = "EwaldCoulomb"

    def __init__(self, ions, lattice: CrystalLattice,
                 handler: EwaldHandler | None = None):
        self.ions = ions
        self.handler = handler if handler is not None \
            else EwaldHandler(lattice)
        # Ion-ion part is constant: compute once.
        self._ion_energy = self.handler.energy(ions.R, ions.charges())

    def evaluate(self, P, twf) -> float:
        R = np.concatenate([P.R, self.ions.R])
        q = np.concatenate([P.charges(), self.ions.charges()])
        total = self.handler.energy(R, q)
        return total

    @property
    def ion_ion_energy(self) -> float:
        return self._ion_energy
