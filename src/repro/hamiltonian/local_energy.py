"""The full Hamiltonian: sums its terms into the local energy."""

from __future__ import annotations

from typing import Dict, List



class Hamiltonian:
    """Container of Hamiltonian terms; evaluates E_L for a configuration.

    Precondition: the ParticleSet's distance tables are up to date and
    ``twf.evaluate_gl`` (or ``evaluate_log``) has filled P.G / P.L.
    """

    def __init__(self, terms: List):
        if not terms:
            raise ValueError("need at least one Hamiltonian term")
        self.terms = list(terms)
        self.last_components: Dict[str, float] = {}

    def evaluate(self, P, twf) -> float:
        total = 0.0
        comps = {}
        for term in self.terms:
            v = term.evaluate(P, twf)
            comps[term.name] = v
            total += v
        self.last_components = comps
        return total

    def term_by_name(self, name: str):
        for t in self.terms:
            if t.name == name:
                return t
        raise KeyError(name)
