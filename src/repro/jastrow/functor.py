"""Cutoff cubic-B-spline Jastrow functors.

A functor u(r) is a 1D cubic B-spline on [0, rcut] with u(rcut) = 0 and
u'(rcut) = 0 (so the pair function switches off smoothly at the cutoff,
producing the branchy masked loops the paper blames for Jastrow's
slightly-sub-ideal vectorization) and a cusp condition u'(0) = cusp.

:meth:`from_shape` synthesizes physically-shaped functors like Fig. 3's:
an exponential correlation hole with the exact cusp, smoothly clamped at
the cutoff.
"""

from __future__ import annotations

import numpy as np

from repro.backend import active
from repro.lint.hot import hot_kernel
from repro.splines.cubic1d import CubicBSpline1D


class BsplineFunctor:
    """u(r) = spline(r) for r < rcut, else 0; with cusp u'(0)."""

    def __init__(self, spline: CubicBSpline1D, rcut: float, cusp: float = 0.0,
                 name: str = "u"):
        if rcut <= 0:
            raise ValueError("rcut must be positive")
        self.spline = spline
        self.rcut = float(rcut)
        self.cusp = float(cusp)
        self.name = name

    # -- construction -------------------------------------------------------------
    @classmethod
    def from_shape(cls, rcut: float, cusp: float = 0.0, amplitude: float = 0.5,
                   decay: float = 1.0, npts: int = 20,
                   name: str = "u") -> "BsplineFunctor":
        """Synthesize a functor with exact cusp and smooth cutoff.

        Shape: ``u(r) = C (e^{-r/F} - e^{-rc/F}) (1 - (r/rc)^3)`` where the
        prefactor C is fixed by the cusp when ``cusp != 0`` (C = -cusp*F)
        and by ``amplitude`` (= u(0)) otherwise.
        """
        F = float(decay)
        rc = float(rcut)
        tail = np.exp(-rc / F)

        def base(r):
            return (np.exp(-r / F) - tail) * (1.0 - (r / rc) ** 3)

        if cusp != 0.0:
            C = -cusp * F
        else:
            b0 = base(0.0)
            C = amplitude / b0 if b0 != 0 else amplitude

        # Analytic end derivatives of the shape: u'(0) = -C/F (the cusp),
        # u'(rc) = 0 (both factors vanish there).
        spline = CubicBSpline1D.from_function(
            lambda r: C * base(r), 0.0, rc, npts,
            deriv0=-C / F, deriv1=0.0)
        return cls(spline, rc, cusp=-C / F, name=name)

    @classmethod
    def from_parameters(cls, rcut: float, knot_values: np.ndarray,
                        cusp: float = 0.0, name: str = "u") -> "BsplineFunctor":
        """Build from explicit knot values (the optimizable parameters of a
        real QMCPACK Jastrow); value at rcut is forced to 0."""
        vals = np.asarray(knot_values, dtype=np.float64).copy()
        vals[-1] = 0.0
        spline = CubicBSpline1D.interpolate(0.0, rcut, vals, deriv0=cusp,
                                            deriv1=0.0)
        return cls(spline, rcut, cusp=cusp, name=name)

    # -- vectorized evaluation (Current kernels) --------------------------------------
    @hot_kernel
    def evaluate_v(self, r: np.ndarray) -> np.ndarray:
        """u(r) with the cutoff mask applied, vectorized."""
        # Functor math runs in accumulation precision by design: spline
        # coefficients are double, and the 1D tables are tiny.
        s = self.spline
        return np.asarray(
            active().functor_v(s.coefs, s.x0, s.h, s.n, self.rcut, r))

    @hot_kernel
    def evaluate_vgl(self, r: np.ndarray):
        """(u, du/dr, d2u/dr2), each zero beyond the cutoff, vectorized."""
        s = self.spline
        u, du, d2u = active().functor_vgl(s.coefs, s.x0, s.h, s.n,
                                          self.rcut, r)
        return np.asarray(u), np.asarray(du), np.asarray(d2u)

    # -- scalar evaluation (Ref kernels) --------------------------------------------------
    def evaluate_v_scalar(self, r: float) -> float:
        if r >= self.rcut:
            return 0.0
        return self.spline.evaluate_v_scalar(r)

    def evaluate_vgl_scalar(self, r: float):
        if r >= self.rcut:
            return 0.0, 0.0, 0.0
        return self.spline.evaluate_vgl_scalar(r)

    # -- for Fig. 3 ---------------------------------------------------------------------------
    def curve(self, npts: int = 101):
        """(r, u(r)) series for plotting the functor, as in Fig. 3."""
        r = np.linspace(0.0, self.rcut, npts)
        return r, self.evaluate_v(r)

    def __repr__(self) -> str:
        return (f"BsplineFunctor({self.name!r}, rcut={self.rcut:.3f}, "
                f"cusp={self.cusp:.3f})")
