"""One-body Jastrow orbital, reference and compute-on-the-fly flavors.

log Psi_J1 = -sum_k U1_k,  U1_k = sum_I u_{s(I)}(|r_I - r_k|)
(Eq. 8 of the paper), with one functor per ion species (Fig. 3's Ni and
O curves).  Consumes the electron-ion (AB) distance table whose rows are
per-electron distances to all ions.

Gradient convention: grad_k = sum_I u'(d_kI) * disp(k->I) / d_kI, where
disp(k->I) = R_I - r_k.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.jastrow.functor import BsplineFunctor
from repro.lint.hot import hot_kernel
from repro.perfmodel.opcount import OPS
from repro.profiling.profiler import PROFILER


class _J1Base:
    name = "J1"

    def __init__(self, n: int, ion_species_ids: np.ndarray,
                 functors: Dict[int, BsplineFunctor], table_index: int = 1):
        """``functors`` maps ion species id -> functor; ``table_index`` is
        the AB table's position in the electron set's table list."""
        self.n = n
        self.ion_species_ids = np.asarray(ion_species_ids, dtype=np.int64)
        self.nions = self.ion_species_ids.size
        self.functors = dict(functors)
        self.table_index = table_index
        # Pre-resolved per-ion functor list for the scalar path, and
        # per-species index masks for the vector path.
        self._ion_functors = [self.functors[g] for g in self.ion_species_ids]
        self._species_masks = {
            g: np.where(self.ion_species_ids == g)[0]
            for g in self.functors
        }


@hot_kernel
class OneBodyJastrowOtf(_J1Base):
    """Optimized J1: vectorized per-species row kernels, no stored state."""

    def _row_v(self, row_r: np.ndarray) -> float:
        total = 0.0
        for g, idx in self._species_masks.items():
            f = self.functors[g]
            total += float(np.sum(f.evaluate_v(row_r[idx])))
        OPS.record("J1", flops=10.0 * self.nions, rbytes=8.0 * self.nions,
                   wbytes=8.0)
        return total

    def _row_vgl(self, row_r: np.ndarray, row_dr: np.ndarray):
        u_sum = 0.0
        grad = np.zeros(3)
        lap = 0.0
        for g, idx in self._species_masks.items():
            f = self.functors[g]
            r = row_r[idx]
            u, du, d2u = f.evaluate_vgl(r)
            u_sum += float(np.sum(u))
            w = du / r
            grad += row_dr[:, idx] @ w
            lap -= float(np.sum(d2u + 2.0 * w))
        OPS.record("J1", flops=20.0 * self.nions, rbytes=32.0 * self.nions,
                   wbytes=40.0)
        return u_sum, grad, lap

    def evaluate_log(self, P) -> float:
        with PROFILER.timer("J1"):
            table = P.distance_tables[self.table_index]
            logpsi = 0.0
            for k in range(self.n):
                u, g, l = self._row_vgl(table.dist_row(k), table.disp_row(k))
                logpsi -= u
                P.G[k] += g
                P.L[k] += l
            return logpsi

    def grad(self, P, k: int) -> np.ndarray:
        with PROFILER.timer("J1"):
            table = P.distance_tables[self.table_index]
            _, g, _ = self._row_vgl(table.dist_row(k), table.disp_row(k))
            return g

    def ratio(self, P, k: int) -> float:
        with PROFILER.timer("J1"):
            table = P.distance_tables[self.table_index]
            u_new = self._row_v(table.temp_r[: self.nions])
            u_old = self._row_v(table.dist_row(k))
            return math.exp(-(u_new - u_old))

    def ratio_grad(self, P, k: int):
        with PROFILER.timer("J1"):
            table = P.distance_tables[self.table_index]
            u_new, grad_new, _ = self._row_vgl(
                table.temp_r[: self.nions],
                table.temp_dr[:, : self.nions])
            u_old = self._row_v(table.dist_row(k))
            return math.exp(-(u_new - u_old)), grad_new

    # -- ratio-only "virtual move" API (NLPP quadrature) -------------------------
    def ratio_at(self, P, k: int, r_new) -> float:
        """J1 ratio for electron ``k`` virtually at ``r_new``.

        Recomputes the electron-ion row for ``r_new`` exactly as
        ``table.move`` would (double-precision min-image, then the table's
        policy downcast) without touching ``temp_r`` or any stored state.
        """
        with PROFILER.timer("J1"):
            table = P.distance_tables[self.table_index]
            # Min-image math in accumulation precision, then the table's
            # policy downcast — exactly what table.move() would produce.
            disp64 = (np.asarray(table.source.R, dtype=np.float64)  # repro: noqa R002
                      - np.asarray(r_new, dtype=np.float64)[None, :])  # repro: noqa R002
            if table.lattice.periodic:
                disp64 = table.lattice.min_image_disp(disp64)
            dists = np.sqrt(np.sum(np.square(disp64), axis=-1)).astype(
                getattr(table, "dtype", np.float64))
            u_new = self._row_v(dists)
            u_old = self._row_v(table.dist_row_array(k)[: self.nions])
            return math.exp(-(u_new - u_old))

    def ratios_vp(self, P, owners, positions) -> np.ndarray:
        """Vectorized :meth:`ratio_at` over a virtual-particle slab: one
        ``(Nvp, nions)`` distance recompute, per-species functor sums, and
        ``u_old`` cached per unique owner electron."""
        with PROFILER.timer("J1"):
            table = P.distance_tables[self.table_index]
            owners = np.asarray(owners)
            pos = np.asarray(positions, dtype=np.float64)  # repro: noqa R002
            disp64 = (np.asarray(table.source.R, dtype=np.float64)[None, :, :]  # repro: noqa R002
                      - pos[:, None, :])
            if table.lattice.periodic:
                disp64 = table.lattice.min_image_disp(disp64)
            dists = np.sqrt(np.sum(np.square(disp64), axis=-1)).astype(
                getattr(table, "dtype", np.float64))
            u_new = np.zeros(len(pos))
            for g, idx in self._species_masks.items():
                f = self.functors[g]
                u_new += np.sum(f.evaluate_v(dists[:, idx]), axis=1)
            u_old = np.empty(len(pos))
            for k in np.unique(owners):
                u_k = self._row_v(table.dist_row_array(int(k))[: self.nions])
                u_old[owners == k] = u_k
            OPS.record("J1", flops=10.0 * self.nions * len(pos),
                       rbytes=8.0 * self.nions * len(pos),
                       wbytes=8.0 * len(pos))
            return np.exp(-(u_new - u_old))

    def accept_move(self, P, k: int) -> None:
        pass  # stateless

    def reject_move(self, P, k: int) -> None:
        pass

    def evaluate_gl(self, P) -> None:
        """Measurement-time grad/lap recomputed from the AB table rows."""
        with PROFILER.timer("J1"):
            table = P.distance_tables[self.table_index]
            for k in range(self.n):
                _, g, l = self._row_vgl(table.dist_row(k), table.disp_row(k))
                P.G[k] += g
                P.L[k] += l

    def register_data(self, P, buf) -> None:
        buf.register_scalar(0.0)

    def update_buffer(self, P, buf) -> None:
        buf.put_scalar(0.0)

    def copy_from_buffer(self, P, buf) -> None:
        buf.get_scalar()

    @property
    def storage_bytes(self) -> int:
        return 5 * self.nions * 8


class OneBodyJastrowRef(_J1Base):
    """Reference J1: stored per-electron value/grad/Laplacian arrays filled
    and updated with scalar per-ion loops."""

    def __init__(self, n, ion_species_ids, functors, table_index: int = 1):
        super().__init__(n, ion_species_ids, functors, table_index)
        self.U = np.zeros(n)
        self.dU = np.zeros((n, 3))
        self.d2U = np.zeros(n)
        self._cache: dict = {}

    def _scalar_row(self, row_r, row_dr):
        """Scalar per-ion accumulation of (u, grad, lap)."""
        u_sum = 0.0
        gx = gy = gz = 0.0
        lap = 0.0
        for I in range(self.nions):
            f = self._ion_functors[I]
            d = row_r[I]
            u, du, d2u = f.evaluate_vgl_scalar(d)
            u_sum += u
            if d < f.rcut:
                w = du / d
                dv = row_dr[I] if isinstance(row_dr, list) else row_dr[:, I]
                gx += w * dv[0]
                gy += w * dv[1]
                gz += w * dv[2]
                lap -= d2u + 2.0 * w
        OPS.record("J1", flops=30.0 * self.nions, rbytes=32.0 * self.nions,
                   wbytes=40.0)
        return u_sum, np.array([gx, gy, gz]), lap

    def evaluate_log(self, P) -> float:
        with PROFILER.timer("J1"):
            table = P.distance_tables[self.table_index]
            logpsi = 0.0
            for k in range(self.n):
                u, g, l = self._scalar_row(table.dist_row(k),
                                           table.disp_row(k))
                self.U[k] = u
                self.dU[k] = g
                self.d2U[k] = l
                logpsi -= u
                P.G[k] += g
                P.L[k] += l
            return logpsi

    def grad(self, P, k: int) -> np.ndarray:
        return self.dU[k].copy()

    def ratio(self, P, k: int) -> float:
        with PROFILER.timer("J1"):
            table = P.distance_tables[self.table_index]
            u_new, g_new, l_new = self._scalar_row(table.temp_r,
                                                   table.temp_dr)
            self._cache[k] = (u_new, g_new, l_new)
            return math.exp(-(u_new - self.U[k]))

    def ratio_grad(self, P, k: int):
        r = self.ratio(P, k)
        return r, self._cache[k][1]

    def ratio_at(self, P, k: int, r_new) -> float:
        """Ratio-only virtual move: scalar per-ion recompute at ``r_new``
        against the stored ``U[k]``; no cache entry, no state change."""
        with PROFILER.timer("J1"):
            table = P.distance_tables[self.table_index]
            disp64 = (np.asarray(table.source.R, dtype=np.float64)
                      - np.asarray(r_new, dtype=np.float64)[None, :])
            if table.lattice.periodic:
                disp64 = table.lattice.min_image_disp(disp64)
            dists = np.sqrt(np.sum(np.square(disp64), axis=-1))
            u_new = 0.0
            for I in range(self.nions):
                u_new += self._ion_functors[I].evaluate_v_scalar(
                    float(dists[I]))
            return math.exp(-(u_new - self.U[k]))

    def accept_move(self, P, k: int) -> None:
        u_new, g_new, l_new = self._cache.pop(k)
        self.U[k] = u_new
        self.dU[k] = g_new
        self.d2U[k] = l_new

    def reject_move(self, P, k: int) -> None:
        self._cache.pop(k, None)

    def evaluate_gl(self, P) -> None:
        """Measurement-time grad/lap from the stored per-electron arrays."""
        P.G[: self.n] += self.dU
        P.L[: self.n] += self.d2U

    def register_data(self, P, buf) -> None:
        buf.register(self.U)
        buf.register(self.dU)
        buf.register(self.d2U)

    def update_buffer(self, P, buf) -> None:
        buf.put(self.U)
        buf.put(self.dU)
        buf.put(self.d2U)

    def copy_from_buffer(self, P, buf) -> None:
        buf.get(self.U)
        buf.get(self.dU)
        buf.get(self.d2U)

    @property
    def storage_bytes(self) -> int:
        return self.U.nbytes + self.dU.nbytes + self.d2U.nbytes
