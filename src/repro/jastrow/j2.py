"""Two-body Jastrow orbital, reference and compute-on-the-fly flavors.

log Psi_J2 = -sum_{i<j} u_{s_i s_j}(r_ij), with spin-pair resolved
functors (uu/dd like-spin, ud unlike-spin).

Gradient/Laplacian conventions (contributions to log Psi):

* grad_i = sum_j u'(d_ij) * disp(i->j) / d_ij          (3-vector)
* lap_i  = -sum_j ( u''(d_ij) + 2 u'(d_ij) / d_ij )

where disp(i->j) = r_j - r_i is the distance-table convention.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.distances.base import BIG_DISTANCE
from repro.jastrow.functor import BsplineFunctor
from repro.lint.hot import hot_kernel
from repro.perfmodel.opcount import OPS
from repro.profiling.profiler import PROFILER


class _J2Base:
    """Shared species-pair bookkeeping for both flavors."""

    name = "J2"

    def __init__(self, n: int, group_slices: List[Tuple[int, slice]],
                 functors: Dict[Tuple[int, int], BsplineFunctor]):
        """``group_slices`` is [(group_id, slice)] from
        ParticleSet.group_ranges(); ``functors`` maps unordered group-id
        pairs (gi <= gj) to functors."""
        self.n = n
        self.group_slices = group_slices
        self.functors = {}
        for (gi, gj), f in functors.items():
            self.functors[(min(gi, gj), max(gi, gj))] = f
        self.group_of = np.empty(n, dtype=np.int64)
        for g, s in group_slices:
            self.group_of[s] = g

    def functor_for(self, gi: int, gj: int) -> BsplineFunctor:
        return self.functors[(min(gi, gj), max(gi, gj))]


@hot_kernel
class TwoBodyJastrowOtf(_J2Base):
    """Optimized J2: vectorized rows, no persistent pair matrices (5N scalars
    of transient work arrays instead of 5N^2 of stored state)."""

    def __init__(self, n, group_slices, functors, table_index: int = 0):
        super().__init__(n, group_slices, functors)
        self.table_index = table_index
        self._cache: dict = {}

    # -- row kernels --------------------------------------------------------------
    def _row_v(self, row_r: np.ndarray, k: int) -> float:
        """sum_j u(r_kj) over a distance row (vectorized per group)."""
        gk = self.group_of[k]
        total = 0.0
        for g, s in self.group_slices:
            f = self.functor_for(gk, g)
            total += float(np.sum(f.evaluate_v(row_r[s])))
        OPS.record("J2", flops=10.0 * self.n, rbytes=8.0 * self.n,
                   wbytes=8.0)
        return total

    def _row_vgl(self, row_r: np.ndarray, row_dr: np.ndarray, k: int):
        """(sum u, grad_k, lap_k) over a row; row_dr is (3, N)."""
        gk = self.group_of[k]
        u_sum = 0.0
        grad = np.zeros(3)
        lap = 0.0
        for g, s in self.group_slices:
            f = self.functor_for(gk, g)
            r = row_r[s]
            u, du, d2u = f.evaluate_vgl(r)
            u_sum += float(np.sum(u))
            w = du / r  # safe: du == 0 wherever r >= rcut (incl. BIG diag)
            grad += row_dr[:, s] @ w
            lap -= float(np.sum(d2u + 2.0 * w))
        OPS.record("J2", flops=20.0 * self.n, rbytes=32.0 * self.n,
                   wbytes=8.0 * 5)
        return u_sum, grad, lap

    # -- WaveFunctionComponent API ---------------------------------------------------
    def evaluate_log(self, P) -> float:
        """Full log Psi_J2; accumulates into P.G and P.L."""
        with PROFILER.timer("J2"):
            table = P.distance_tables[self.table_index]
            logpsi = 0.0
            for i in range(self.n):
                u_sum, grad, lap = self._row_vgl(table.dist_row(i),
                                                 table.disp_row(i), i)
                logpsi -= 0.5 * u_sum
                P.G[i] += grad
                P.L[i] += lap
            return logpsi

    def grad(self, P, k: int) -> np.ndarray:
        """grad_k log Psi_J2 at the current position (for the drift)."""
        with PROFILER.timer("J2"):
            table = P.distance_tables[self.table_index]
            _, g, _ = self._row_vgl(table.dist_row(k), table.disp_row(k), k)
            return g

    def ratio(self, P, k: int) -> float:
        """Psi(R')/Psi(R) for the proposed move of particle k."""
        with PROFILER.timer("J2"):
            table = P.distance_tables[self.table_index]
            u_new = self._row_v(table.temp_r[: self.n], k)
            u_old = self._row_v(table.dist_row(k), k)
            self._cache[k] = (u_new, u_old)
            return math.exp(-(u_new - u_old))

    def ratio_grad(self, P, k: int):
        """(ratio, grad at the proposed position)."""
        with PROFILER.timer("J2"):
            table = P.distance_tables[self.table_index]
            u_new, grad_new, _ = self._row_vgl(
                table.temp_r[: self.n],
                table.temp_dr[:, : self.n], k)
            u_old = self._row_v(table.dist_row(k), k)
            self._cache[k] = (u_new, u_old)
            return math.exp(-(u_new - u_old)), grad_new

    # -- ratio-only "virtual move" API (NLPP quadrature) -------------------------
    def ratio_at(self, P, k: int, r_new) -> float:
        """J2 ratio for electron ``k`` virtually at ``r_new``: fresh
        electron-electron row in accumulation precision with the table's
        policy downcast, self-distance masked by the BIG sentinel; no
        temp rows or cache entries are written."""
        with PROFILER.timer("J2"):
            table = P.distance_tables[self.table_index]
            disp64 = (np.asarray(P.R, dtype=np.float64)  # repro: noqa R002
                      - np.asarray(r_new, dtype=np.float64)[None, :])  # repro: noqa R002
            if table.lattice.periodic:
                disp64 = table.lattice.min_image_disp(disp64)
            d64 = np.sqrt(np.sum(np.square(disp64), axis=-1))
            d64[k] = BIG_DISTANCE
            dists = d64.astype(getattr(table, "dtype", np.float64))
            u_new = self._row_v(dists, k)
            u_old = self._row_v(table.dist_row_array(k)[: self.n], k)
            return math.exp(-(u_new - u_old))

    def ratios_vp(self, P, owners, positions) -> np.ndarray:
        """Vectorized :meth:`ratio_at` over a virtual-particle slab: one
        ``(Nvp, N)`` distance recompute, owner-group-resolved functor
        sums, and ``u_old`` cached per unique owner electron."""
        with PROFILER.timer("J2"):
            table = P.distance_tables[self.table_index]
            owners = np.asarray(owners)
            pos = np.asarray(positions, dtype=np.float64)  # repro: noqa R002
            disp64 = (np.asarray(P.R, dtype=np.float64)[None, :, :]  # repro: noqa R002
                      - pos[:, None, :])
            if table.lattice.periodic:
                disp64 = table.lattice.min_image_disp(disp64)
            d64 = np.sqrt(np.sum(np.square(disp64), axis=-1))
            d64[np.arange(len(owners)), owners] = BIG_DISTANCE
            dists = d64.astype(getattr(table, "dtype", np.float64))
            u_new = np.zeros(len(owners))
            owner_groups = self.group_of[owners]
            for gk in np.unique(owner_groups):
                rows = np.nonzero(owner_groups == gk)[0]
                for g, s in self.group_slices:
                    f = self.functor_for(int(gk), g)
                    u_new[rows] += np.sum(
                        f.evaluate_v(dists[rows][:, s]), axis=1)
            u_old = np.empty(len(owners))
            for k in np.unique(owners):
                u_k = self._row_v(table.dist_row_array(int(k))[: self.n],
                                  int(k))
                u_old[owners == k] = u_k
            OPS.record("J2", flops=10.0 * self.n * len(owners),
                       rbytes=8.0 * self.n * len(owners),
                       wbytes=8.0 * len(owners))
            return np.exp(-(u_new - u_old))

    def accept_move(self, P, k: int) -> None:
        self._cache.pop(k, None)  # stateless: nothing else to update

    def reject_move(self, P, k: int) -> None:
        self._cache.pop(k, None)

    def evaluate_gl(self, P) -> None:
        """Measurement-time grad/lap: recomputed from the distance rows —
        that is the compute-on-the-fly policy (nothing was stored)."""
        with PROFILER.timer("J2"):
            table = P.distance_tables[self.table_index]
            for i in range(self.n):
                _, grad, lap = self._row_vgl(table.dist_row(i),
                                             table.disp_row(i), i)
                P.G[i] += grad
                P.L[i] += lap

    # -- walker buffer (Current: only the scalar log value travels) --------------------
    def register_data(self, P, buf) -> None:
        buf.register_scalar(0.0)

    def update_buffer(self, P, buf) -> None:
        buf.put_scalar(0.0)

    def copy_from_buffer(self, P, buf) -> None:
        buf.get_scalar()

    @property
    def storage_bytes(self) -> int:
        return 5 * self.n * 8  # transient work arrays only


class TwoBodyJastrowRef(_J2Base):
    """Reference J2: full N x N value/gradient/Laplacian matrices, scalar
    per-pair arithmetic, row+column updates on acceptance.

    Stored state per walker (the paper's 5 N^2 scalars):
      * ``Umat[i, j]``  = u(d_ij)
      * ``dUmat[i, j]`` = u'(d_ij) * disp(i->j)/d_ij   (grad-log contribution)
      * ``d2Umat[i, j]`` = u''(d_ij) + 2 u'(d_ij)/d_ij
    """

    def __init__(self, n, group_slices, functors, table_index: int = 0):
        super().__init__(n, group_slices, functors)
        self.table_index = table_index
        self.Umat = np.zeros((n, n))
        self.dUmat = np.zeros((n, n, 3))
        self.d2Umat = np.zeros((n, n))
        self._cache: dict = {}

    # -- full evaluation ------------------------------------------------------------
    def evaluate_log(self, P) -> float:
        with PROFILER.timer("J2"):
            table = P.distance_tables[self.table_index]
            n = self.n
            logpsi = 0.0
            for i in range(n):
                row_r = table.dist_row(i)
                row_dr = table.disp_row(i)
                gi = self.group_of[i]
                for j in range(n):
                    if j == i:
                        self.Umat[i, j] = 0.0
                        self.dUmat[i, j] = 0.0
                        self.d2Umat[i, j] = 0.0
                        continue
                    d = row_r[j]
                    f = self.functor_for(gi, self.group_of[j])
                    u, du, d2u = f.evaluate_vgl_scalar(d)
                    self.Umat[i, j] = u
                    if d < f.rcut:
                        w = du / d
                        dv = row_dr[j] if isinstance(row_dr, list) \
                            else row_dr[:, j]
                        self.dUmat[i, j, 0] = w * dv[0]
                        self.dUmat[i, j, 1] = w * dv[1]
                        self.dUmat[i, j, 2] = w * dv[2]
                        self.d2Umat[i, j] = d2u + 2.0 * w
                    else:
                        self.dUmat[i, j] = 0.0
                        self.d2Umat[i, j] = 0.0
                logpsi -= 0.5 * float(np.sum(self.Umat[i]))
                P.G[i] += np.sum(self.dUmat[i], axis=0)
                P.L[i] += -float(np.sum(self.d2Umat[i]))
            OPS.record("J2", flops=30.0 * n * n, rbytes=16.0 * n * n,
                       wbytes=40.0 * n * n)
            return logpsi

    def grad(self, P, k: int) -> np.ndarray:
        """From the stored matrices — the retrieve side of store-over-compute."""
        with PROFILER.timer("J2"):
            OPS.record("J2", rbytes=24.0 * self.n, wbytes=24.0)
            return np.sum(self.dUmat[k], axis=0)

    # -- PbyP -------------------------------------------------------------------------
    def _scalar_row(self, P, k: int, with_grad: bool):
        """Scalar loop over the temp row; returns (u_new_list, du, d2u, grad)."""
        table = P.distance_tables[self.table_index]
        temp_r = table.temp_r
        temp_dr = table.temp_dr
        gk = self.group_of[k]
        n = self.n
        u_new = [0.0] * n
        du_new = [(0.0, 0.0, 0.0)] * n
        d2u_new = [0.0] * n
        grad = [0.0, 0.0, 0.0]
        for j in range(n):
            if j == k:
                continue
            d = temp_r[j]
            f = self.functor_for(gk, self.group_of[j])
            if with_grad:
                u, du, d2u = f.evaluate_vgl_scalar(d)
                u_new[j] = u
                if d < f.rcut:
                    w = du / d
                    dv = temp_dr[j] if isinstance(temp_dr, list) else temp_dr[:, j]
                    t = (w * dv[0], w * dv[1], w * dv[2])
                    du_new[j] = t
                    d2u_new[j] = d2u + 2.0 * w
                    grad[0] += t[0]
                    grad[1] += t[1]
                    grad[2] += t[2]
            else:
                u_new[j] = f.evaluate_v_scalar(d)
        OPS.record("J2", flops=(30.0 if with_grad else 12.0) * n,
                   rbytes=32.0 * n, wbytes=40.0 * n)
        return u_new, du_new, d2u_new, np.array(grad)

    def ratio(self, P, k: int) -> float:
        with PROFILER.timer("J2"):
            u_new, du_new, d2u_new, _ = self._scalar_row(P, k, with_grad=False)
            u_old = float(np.sum(self.Umat[k]))
            self._cache[k] = (u_new, None, None)
            return math.exp(-(sum(u_new) - u_old))

    def ratio_grad(self, P, k: int):
        with PROFILER.timer("J2"):
            u_new, du_new, d2u_new, grad = self._scalar_row(P, k, with_grad=True)
            u_old = float(np.sum(self.Umat[k]))
            self._cache[k] = (u_new, du_new, d2u_new)
            return math.exp(-(sum(u_new) - u_old)), grad

    def ratio_at(self, P, k: int, r_new) -> float:
        """Ratio-only virtual move against the stored ``Umat[k]`` row:
        scalar per-pair recompute at ``r_new``, no cache entry."""
        with PROFILER.timer("J2"):
            disp64 = (np.asarray(P.R, dtype=np.float64)
                      - np.asarray(r_new, dtype=np.float64)[None, :])
            table = P.distance_tables[self.table_index]
            if table.lattice.periodic:
                disp64 = table.lattice.min_image_disp(disp64)
            dists = np.sqrt(np.sum(np.square(disp64), axis=-1))
            gk = self.group_of[k]
            u_new = 0.0
            for j in range(self.n):
                if j == k:
                    continue
                f = self.functor_for(gk, self.group_of[j])
                u_new += f.evaluate_v_scalar(float(dists[j]))
            u_old = float(np.sum(self.Umat[k]))
            return math.exp(-(u_new - u_old))

    def accept_move(self, P, k: int) -> None:
        """Row + column writes into all three matrices (scalar loop)."""
        with PROFILER.timer("J2"):
            u_new, du_new, d2u_new = self._cache.pop(k)
            if du_new is None:
                # ratio() was called without gradients; rebuild them now from
                # the temp row so the stored state stays complete.
                u_new, du_new, d2u_new, _ = self._scalar_row(P, k,
                                                             with_grad=True)
            n = self.n
            for j in range(n):
                if j == k:
                    continue
                self.Umat[k, j] = u_new[j]
                self.Umat[j, k] = u_new[j]
                t = du_new[j]
                self.dUmat[k, j, 0] = t[0]
                self.dUmat[k, j, 1] = t[1]
                self.dUmat[k, j, 2] = t[2]
                # disp(j->k) = -disp(k->j): gradient terms flip sign.
                self.dUmat[j, k, 0] = -t[0]
                self.dUmat[j, k, 1] = -t[1]
                self.dUmat[j, k, 2] = -t[2]
                self.d2Umat[k, j] = d2u_new[j]
                self.d2Umat[j, k] = d2u_new[j]
            OPS.record("J2", rbytes=40.0 * n, wbytes=80.0 * n)

    def reject_move(self, P, k: int) -> None:
        self._cache.pop(k, None)

    def evaluate_gl(self, P) -> None:
        """Measurement-time grad/lap retrieved from the stored matrices —
        the store-over-compute policy's read side."""
        with PROFILER.timer("J2"):
            n = self.n
            P.G[:n] += np.sum(self.dUmat, axis=1)
            P.L[:n] += -np.sum(self.d2Umat, axis=1)
            OPS.record("J2", rbytes=40.0 * n * n, wbytes=32.0 * n)

    # -- walker buffer (Ref: the full 5N^2 matrices travel) ----------------------------
    def register_data(self, P, buf) -> None:
        buf.register(self.Umat)
        buf.register(self.dUmat)
        buf.register(self.d2Umat)

    def update_buffer(self, P, buf) -> None:
        buf.put(self.Umat)
        buf.put(self.dUmat)
        buf.put(self.d2Umat)

    def copy_from_buffer(self, P, buf) -> None:
        buf.get(self.Umat)
        buf.get(self.dUmat)
        buf.get(self.d2Umat)

    @property
    def storage_bytes(self) -> int:
        return self.Umat.nbytes + self.dUmat.nbytes + self.d2Umat.nbytes
