"""Jastrow correlation factors (Eq. 3 of the paper).

``log Psi_J = -sum u(r)`` with B-spline functors of finite cutoff
(:class:`BsplineFunctor`, Fig. 3).  Each orbital comes in two flavors:

* ``ref`` — the store-over-compute baseline: J2 keeps full N x N value /
  gradient / Laplacian matrices (5 N^2 scalars per walker) updated row +
  column on every acceptance, with scalar per-pair arithmetic;
* ``otf`` — the optimized compute-on-the-fly version: only per-particle
  accumulations (5 N scalars), rebuilt from the distance-table rows with
  vectorized kernels (Sec. 7.5).

Both produce identical physics; the tests assert it.
"""

from repro.jastrow.functor import BsplineFunctor
from repro.jastrow.j2 import TwoBodyJastrowRef, TwoBodyJastrowOtf
from repro.jastrow.j1 import OneBodyJastrowRef, OneBodyJastrowOtf

__all__ = [
    "BsplineFunctor",
    "TwoBodyJastrowRef",
    "TwoBodyJastrowOtf",
    "OneBodyJastrowRef",
    "OneBodyJastrowOtf",
]
