"""SPO set implementations."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.lattice.cell import CrystalLattice
from repro.lint.hot import hot_kernel
from repro.profiling.profiler import PROFILER
from repro.splines.bspline3d import BSpline3D


@hot_kernel
class BsplineSPOSet:
    """Orbitals evaluated from a shared, read-only 3D B-spline table.

    ``layout='soa'`` uses the multi-orbital kernels (one einsum over the
    4x4x4 stencil, orbital index contiguous); ``layout='ref'`` loops over
    orbitals — QMCPACK 3.0.0's partially-vectorized path.
    """

    def __init__(self, spline: BSpline3D, norb: int | None = None,
                 layout: str = "soa"):
        if layout not in ("soa", "ref"):
            raise ValueError(f"unknown SPO layout {layout!r}")
        self.spline = spline
        self.norb = norb if norb is not None else spline.norb
        if self.norb > spline.norb:
            raise ValueError(
                f"asked for {self.norb} orbitals, table holds {spline.norb}")
        self.layout = layout

    def evaluate_v(self, r: np.ndarray) -> np.ndarray:
        """Orbital values at r (the ratio-only path) — Bspline-v."""
        with PROFILER.timer("Bspline-v"):
            if self.layout == "soa":
                return self.spline.multi_v(r)[: self.norb]
            return self.spline.ref_v(r)[: self.norb]

    def evaluate_vgl(self, r: np.ndarray):
        """(values, gradients, laplacians) at r — Bspline-vgh + SPO-vgl."""
        with PROFILER.timer("Bspline-vgh"):
            if self.layout == "soa":
                v, g, h = self.spline.multi_vgh(r)
            else:
                v, g, h = self.spline.ref_vgh(r)
        with PROFILER.timer("SPO-vgl"):
            lap = np.trace(h, axis1=1, axis2=2)
        return v[: self.norb], g[: self.norb], lap[: self.norb]

    @property
    def table_bytes(self) -> int:
        return self.spline.table_bytes


class PlaneWaveSPOSet:
    """Analytic cos/sin plane-wave orbitals for validation and toy systems.

    Orbital 0 is constant; subsequent orbitals alternate cos(G.r) and
    sin(G.r) over a list of reciprocal vectors, mimicking the lowest bands
    of a simple metal.
    """

    def __init__(self, lattice: CrystalLattice, norb: int):
        if not lattice.periodic:
            raise ValueError("plane waves need a periodic cell")
        self.lattice = lattice
        self.norb = norb
        gvecs = self._lowest_gvectors(norb)
        self.gvecs = gvecs  # (norb, 3); row 0 is zero (constant orbital)
        self.is_cos = np.array([(i % 2 == 1) or i == 0
                                for i in range(norb)])

    def _lowest_gvectors(self, norb: int) -> np.ndarray:
        recip = self.lattice.reciprocal
        # enumerate integer triples by |G|, pair each non-zero shell twice
        # (cos & sin share a G)
        cands = []
        rng = range(-4, 5)
        for i in rng:
            for j in rng:
                for k in rng:
                    g = i * recip[0] + j * recip[1] + k * recip[2]
                    cands.append((float(g @ g), (i, j, k), g))
        cands.sort(key=lambda t: (t[0], t[1]))
        out = [np.zeros(3)]
        seen = {(0, 0, 0)}
        for _, ijk, g in cands:
            if len(out) >= norb:
                break
            if ijk in seen or tuple(-x for x in ijk) in seen:
                continue
            seen.add(ijk)
            out.append(g.copy())   # cos
            if len(out) < norb:
                out.append(g.copy())  # sin
        return np.array(out[:norb])

    def evaluate_v(self, r: np.ndarray) -> np.ndarray:
        with PROFILER.timer("Bspline-v"):
            phase = self.gvecs @ np.asarray(r, dtype=np.float64)
            return np.where(self.is_cos, np.cos(phase), np.sin(phase))

    def evaluate_vgl(self, r: np.ndarray):
        with PROFILER.timer("Bspline-vgh"):
            phase = self.gvecs @ np.asarray(r, dtype=np.float64)
            cosp, sinp = np.cos(phase), np.sin(phase)
            v = np.where(self.is_cos, cosp, sinp)
            dphase = np.where(self.is_cos, -sinp, cosp)
            g = dphase[:, None] * self.gvecs
            g2 = np.sum(self.gvecs * self.gvecs, axis=1)
            lap = -g2 * v
        return v, g, lap

    def sample_on_grid(self, grid: Sequence[int]) -> np.ndarray:
        """Sample all orbitals on a periodic grid, for B-spline fitting."""
        nx, ny, nz = grid
        fx = np.arange(nx) / nx
        fy = np.arange(ny) / ny
        fz = np.arange(nz) / nz
        FX, FY, FZ = np.meshgrid(fx, fy, fz, indexing="ij")
        frac = np.stack([FX, FY, FZ], axis=-1).reshape(-1, 3)
        cart = self.lattice.to_cart(frac)
        phases = cart @ self.gvecs.T  # (npts, norb)
        vals = np.where(self.is_cos[None, :], np.cos(phases), np.sin(phases))
        return vals.reshape(nx, ny, nz, self.norb)


def build_planewave_spline(lattice: CrystalLattice, norb: int,
                           grid: Sequence[int], dtype=np.float32) -> BSpline3D:
    """Synthesize a B-spline orbital table from plane-wave samples.

    This is the paper-substitution for the DFT-generated einspline tables:
    same storage, same evaluation kernels, physically-smooth contents.
    """
    pw = PlaneWaveSPOSet(lattice, norb)
    vals = pw.sample_on_grid(grid)
    return BSpline3D.fit(vals, lattice.inverse, dtype=dtype)
