"""Single-particle orbital (SPO) sets.

:class:`BsplineSPOSet` wraps the 3D B-spline table with the two
evaluation layouts (per-orbital reference loop vs multi-orbital SoA) and
reports its time to the Bspline-v / Bspline-vgh / SPO-vgl profile rows.
:class:`PlaneWaveSPOSet` is an analytic orbital set used to validate the
spline against exact values and to build tiny test systems.
"""

from repro.spo.sposet import BsplineSPOSet, PlaneWaveSPOSet, build_planewave_spline
from repro.spo.atomic import LCAOSpoSet, SlaterOrbitalSPOSet

__all__ = ["BsplineSPOSet", "PlaneWaveSPOSet", "build_planewave_spline",
           "SlaterOrbitalSPOSet", "LCAOSpoSet"]
