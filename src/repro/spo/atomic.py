"""Analytic atomic (Slater-type) orbitals for open-boundary systems.

QMC engines are usually validated on systems with known answers before
touching solids; the hydrogen atom is the canonical one: with the exact
1s orbital ``exp(-r)`` the local energy is -1/2 hartree at every
configuration (zero variance), and with a deliberately wrong exponent
VMC sits above -1/2 while DMC projects back to it.  This module
provides the orbitals; the integration tests run those checks against
this package's full Hamiltonian/driver stack.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.profiling.profiler import PROFILER


class SlaterOrbitalSPOSet:
    """1s Slater orbitals ``phi_I(r) = exp(-zeta_I |r - R_I|)`` centered
    on a set of nuclei (open boundary conditions).

    Derivatives (for r != R_I):
        grad phi = -zeta * phi * u,      u = (r - R_I)/|r - R_I|
        lap  phi = phi * (zeta^2 - 2 zeta / |r - R_I|)
    """

    def __init__(self, centers: np.ndarray, zetas: Sequence[float]):
        centers = np.asarray(centers, dtype=np.float64)
        if centers.ndim != 2 or centers.shape[1] != 3:
            raise ValueError(f"centers must be (M, 3), got {centers.shape}")
        self.centers = centers
        self.zetas = np.asarray(zetas, dtype=np.float64)
        if self.zetas.shape != (centers.shape[0],):
            raise ValueError("need one exponent per center")
        if np.any(self.zetas <= 0):
            raise ValueError("exponents must be positive")
        self.norb = centers.shape[0]

    def _dists(self, r: np.ndarray):
        dr = np.asarray(r, dtype=np.float64) - self.centers  # (M, 3)
        d = np.sqrt(np.sum(dr * dr, axis=1))
        return dr, np.maximum(d, 1e-300)

    def evaluate_v(self, r: np.ndarray) -> np.ndarray:
        with PROFILER.timer("Bspline-v"):
            _, d = self._dists(r)
            return np.exp(-self.zetas * d)

    def evaluate_vgl(self, r: np.ndarray):
        with PROFILER.timer("Bspline-vgh"):
            dr, d = self._dists(r)
            v = np.exp(-self.zetas * d)
            u = dr / d[:, None]
            g = -(self.zetas * v)[:, None] * u
            lap = v * (self.zetas ** 2 - 2.0 * self.zetas / d)
        return v, g, lap


class LCAOSpoSet:
    """Molecular orbitals as linear combinations of Slater 1s primitives.

    ``coefficients`` is (norb, nprimitive): orbital m is
    ``sum_p C[m, p] * exp(-zeta_p |r - R_p|)`` — enough for the classic
    small-molecule validation systems (H2+, H2, HeH+).
    """

    def __init__(self, primitives: SlaterOrbitalSPOSet,
                 coefficients: np.ndarray):
        self.primitives = primitives
        C = np.asarray(coefficients, dtype=np.float64)
        if C.ndim != 2 or C.shape[1] != primitives.norb:
            raise ValueError(
                f"coefficients must be (norb, {primitives.norb})")
        self.C = C
        self.norb = C.shape[0]

    def evaluate_v(self, r: np.ndarray) -> np.ndarray:
        return self.C @ self.primitives.evaluate_v(r)

    def evaluate_vgl(self, r: np.ndarray):
        v, g, lap = self.primitives.evaluate_vgl(r)
        return self.C @ v, self.C @ g, self.C @ lap
