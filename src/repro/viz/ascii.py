"""Minimal ASCII chart rendering."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

_MARKERS = "ox+*#@%&"


def line_chart(series: Dict[str, Sequence[float]],
               x: Optional[Sequence[float]] = None,
               width: int = 60, height: int = 16,
               logy: bool = False, title: str = "") -> str:
    """Render one or more named series as an ASCII line chart.

    All series share the x grid (indices if ``x`` is not given); each
    gets a marker from a fixed cycle, listed in the legend.
    """
    if not series:
        raise ValueError("no series given")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must share one length")
    npts = lengths.pop()
    if npts < 2:
        raise ValueError("need at least 2 points")
    xs = np.asarray(x if x is not None else np.arange(npts),
                    dtype=np.float64)
    if xs.size != npts:
        raise ValueError("x length mismatch")

    ys = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    if logy:
        for k, v in ys.items():
            if np.any(v <= 0):
                raise ValueError(f"log scale needs positive data ({k})")
            ys[k] = np.log10(v)
    ymin = min(float(np.min(v)) for v in ys.values())
    ymax = max(float(np.max(v)) for v in ys.values())
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = float(np.min(xs)), float(np.max(xs))
    if xmax == xmin:
        xmax = xmin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, v), marker in zip(ys.items(), _MARKERS):
        for xi, yi in zip(xs, v):
            col = int(round((xi - xmin) / (xmax - xmin) * (width - 1)))
            row = int(round((yi - ymin) / (ymax - ymin) * (height - 1)))
            grid[height - 1 - row][col] = marker

    def ylab(frac):
        val = ymin + frac * (ymax - ymin)
        if logy:
            val = 10 ** val
        return f"{val:10.3g}"

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        frac = (height - 1 - i) / (height - 1)
        label = ylab(frac) if i in (0, height // 2, height - 1) else " " * 10
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(" " * 11 + f"{xmin:<.4g}" + " " * (width - 12)
                 + f"{xmax:>.4g}")
    legend = "   ".join(f"{m}={name}"
                        for (name, _), m in zip(ys.items(), _MARKERS))
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, title: str = "",
              unit: str = "") -> str:
    """Render labeled horizontal bars scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if not labels:
        raise ValueError("nothing to plot")
    vals = np.asarray(values, dtype=np.float64)
    if np.any(vals < 0):
        raise ValueError("bar chart needs non-negative values")
    vmax = float(np.max(vals)) or 1.0
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for lab, v in zip(labels, vals):
        n = int(round(v / vmax * width))
        lines.append(f"{lab:<{label_w}s} |" + "#" * n
                     + f" {v:.3g}{unit}")
    return "\n".join(lines)
