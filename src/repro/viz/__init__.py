"""Terminal visualization: ASCII line/bar charts for the figure harnesses.

The reproduction environment has no plotting stack, so the regenerated
figures render as Unicode charts — good enough to *see* Fig. 1's scaling
lines, Fig. 9's memory bars or Fig. 10's power traces in the bench logs.
"""

from repro.viz.ascii import bar_chart, line_chart

__all__ = ["line_chart", "bar_chart"]
