"""TrialWaveFunction: the product of wavefunction components.

Every component implements the same protocol (the paper's redesigned
member functions with "clearly defined roles for move, accept/reject and
measurement", Sec. 7.5):

* ``evaluate_log(P)``   — full recompute; accumulates grad/lap into P
* ``evaluate_gl(P)``    — grad/lap from current internal state (no
                          recompute; used at measurement time)
* ``grad(P, k)``        — gradient at the current position (drift)
* ``ratio(P, k)``       — Psi(R')/Psi(R) for the active move
* ``ratio_grad(P, k)``  — ratio plus gradient at the proposed position
* ``accept_move(P, k)`` / ``reject_move(P, k)``
* buffer methods for per-walker state (``register_data`` /
  ``update_buffer`` / ``copy_from_buffer``)

Protocol ordering: the driver must call ``twf.accept_move(P, k)``
*before* ``P.accept_move(k)`` — components consume the distance tables'
temporaries, which the ParticleSet invalidates when it commits.
"""

from __future__ import annotations

from typing import List

import numpy as np


class TrialWaveFunction:
    """Product wavefunction over registered components."""

    def __init__(self, components: List):
        if not components:
            raise ValueError("need at least one component")
        self.components = list(components)
        self.log_value: float = 0.0

    # -- full evaluation --------------------------------------------------------
    def evaluate_log(self, P) -> float:
        """Recompute everything; fills P.G and P.L from zero."""
        P.G[...] = 0.0
        P.L[...] = 0.0
        self.log_value = 0.0
        for c in self.components:
            self.log_value += c.evaluate_log(P)
        return self.log_value

    def evaluate_gl(self, P) -> None:
        """Gradients/Laplacians from current component state (measurement)."""
        P.G[...] = 0.0
        P.L[...] = 0.0
        for c in self.components:
            c.evaluate_gl(P)

    # -- PbyP --------------------------------------------------------------------
    def grad(self, P, k: int) -> np.ndarray:
        g = np.zeros(3)
        for c in self.components:
            g += c.grad(P, k)
        return g

    def ratio(self, P, k: int) -> float:
        rho = 1.0
        for c in self.components:
            rho *= c.ratio(P, k)
        return rho

    # -- ratio-only "virtual move" API (NLPP quadrature) -------------------------
    def ratio_at(self, P, k: int, r_new) -> float:
        """Psi(..., r_new at k, ...)/Psi(R) without touching walker state.

        Unlike :meth:`ratio`, no ``make_move`` is required beforehand and
        no ``reject_move`` afterwards: every component computes from the
        committed state plus the explicit position.
        """
        rho = 1.0
        for c in self.components:
            rho *= c.ratio_at(P, k, r_new)
        return rho

    def ratios_vp(self, P, owners, positions) -> np.ndarray:
        """Vectorized :meth:`ratio_at` over a virtual-particle slab.

        Components exposing ``ratios_vp`` (SoA determinants, OTF
        Jastrows) get the whole ``(Nvp, 3)`` slab at once; the rest fall
        back to per-point ``ratio_at``.  Walker state is untouched.
        """
        owners = np.asarray(owners)
        pos = np.asarray(positions, dtype=np.float64)
        rho = np.ones(len(owners), dtype=np.float64)
        for c in self.components:
            fn = getattr(c, "ratios_vp", None)
            if fn is not None:
                rho *= np.asarray(fn(P, owners, pos), dtype=np.float64)
            else:
                for m in range(len(owners)):
                    rho[m] *= c.ratio_at(P, int(owners[m]), pos[m])
        return rho

    def ratio_grad(self, P, k: int):
        rho = 1.0
        g = np.zeros(3)
        for c in self.components:
            r, gc = c.ratio_grad(P, k)
            rho *= r
            g += gc
        return rho, g

    def accept_move(self, P, k: int, log_ratio: float | None = None) -> None:
        for c in self.components:
            c.accept_move(P, k)
        if log_ratio is not None:
            self.log_value += log_ratio

    def reject_move(self, P, k: int) -> None:
        for c in self.components:
            c.reject_move(P, k)

    # -- walker buffer ----------------------------------------------------------------
    def register_data(self, P, buf) -> None:
        for c in self.components:
            c.register_data(P, buf)
        buf.seal()

    def update_buffer(self, P, buf) -> None:
        buf.rewind()
        for c in self.components:
            c.update_buffer(P, buf)

    def copy_from_buffer(self, P, buf) -> None:
        buf.rewind()
        for c in self.components:
            c.copy_from_buffer(P, buf)

    # -- bookkeeping ---------------------------------------------------------------------
    @property
    def storage_bytes(self) -> int:
        """Per-walker wavefunction state (what Fig. 8/9's memory tracks)."""
        return sum(c.storage_bytes for c in self.components)

    def component_by_name(self, name: str):
        for c in self.components:
            if getattr(c, "name", "") == name:
                return c
        raise KeyError(name)
