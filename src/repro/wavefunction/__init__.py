"""Trial wavefunction composition (Eq. 2): Psi = exp(J1 + J2) D_up D_down."""

from repro.wavefunction.trialwf import TrialWaveFunction

__all__ = ["TrialWaveFunction"]
