"""Run output: QMCPACK-style ``scalar.dat`` traces and JSON summaries.

Production QMC runs stream per-generation scalars to ``*.scalar.dat``
(whitespace-separated columns, ``#`` header) for post-processing; this
module writes and reads that format from a finished
:class:`~repro.drivers.result.QMCResult` / EstimatorManager, plus a JSON
summary with the corrected estimates.
"""

from repro.output.writers import (
    read_scalar_dat, result_summary_dict, write_json_summary,
    write_scalar_dat,
)
from repro.output.checkpoint import load_population, save_population
from repro.output.stream import (
    StreamSet, TraceCorruptionError, TraceError, TraceField, TracePosition,
    TraceReader, TraceSchemaError, TraceTruncationError, TraceWriter,
    merge_crowd_segments,
)
from repro.output.runstate import (
    RunCheckpoint, load_run_checkpoint, save_run_checkpoint,
)

__all__ = [
    "write_scalar_dat", "read_scalar_dat",
    "result_summary_dict", "write_json_summary",
    "save_population", "load_population",
    "TraceField", "TracePosition", "TraceWriter", "TraceReader",
    "TraceError", "TraceSchemaError", "TraceCorruptionError",
    "TraceTruncationError", "merge_crowd_segments", "StreamSet",
    "RunCheckpoint", "save_run_checkpoint", "load_run_checkpoint",
]
