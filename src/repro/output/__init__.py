"""Run output: QMCPACK-style ``scalar.dat`` traces and JSON summaries.

Production QMC runs stream per-generation scalars to ``*.scalar.dat``
(whitespace-separated columns, ``#`` header) for post-processing; this
module writes and reads that format from a finished
:class:`~repro.drivers.result.QMCResult` / EstimatorManager, plus a JSON
summary with the corrected estimates.
"""

from repro.output.writers import (
    read_scalar_dat, result_summary_dict, write_json_summary,
    write_scalar_dat,
)
from repro.output.checkpoint import load_population, save_population

__all__ = [
    "write_scalar_dat", "read_scalar_dat",
    "result_summary_dict", "write_json_summary",
    "save_population", "load_population",
]
