"""repro-analyze — the qmca-style trace analyzer.

Reads ``scalar.dat`` files (written by :mod:`repro.output.writers`),
discards the detected equilibration transient and prints
autocorrelation-corrected estimates per column — what QMCPACK users run
``qmca`` for.
"""

from __future__ import annotations

import argparse
from typing import Sequence

import numpy as np

from repro.estimators.scalar import equilibration_index
from repro.output.writers import read_scalar_dat
from repro.stats.series import (
    autocorrelation_time, blocking_error,
)


def analyze_column(values: np.ndarray, equilibration: int | None = None):
    """(mean, error, tau, n_used, n_discarded) for one scalar series."""
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values)]
    if values.size == 0:
        return float("nan"), float("nan"), float("nan"), 0, 0
    t0 = equilibration if equilibration is not None \
        else equilibration_index(values)
    tail = values[t0:]
    if tail.size < 2:
        return float(np.mean(tail)) if tail.size else float("nan"), \
            float("nan"), float("nan"), tail.size, t0
    return (float(np.mean(tail)), blocking_error(tail),
            autocorrelation_time(tail), tail.size, t0)


def format_report(path: str, equilibration: int | None = None) -> str:
    data = read_scalar_dat(path)
    lines = [f"== {path} =="]
    for name, values in data.items():
        if name == "index":
            continue
        mean, err, tau, n, t0 = analyze_column(values, equilibration)
        lines.append(f"  {name:<16s} {mean:14.6f} +- {err:12.6f}   "
                     f"tau={tau:5.1f}  n={n}  (discarded {t0})")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="analyze scalar.dat traces (qmca analogue)")
    ap.add_argument("files", nargs="+", help="scalar.dat files")
    ap.add_argument("-e", "--equilibration", type=int, default=None,
                    help="samples to discard (default: auto-detect)")
    args = ap.parse_args(argv)
    for path in args.files:
        print(format_report(path, args.equilibration))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
