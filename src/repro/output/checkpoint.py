"""Walker-population checkpoint/restart.

Long DMC campaigns checkpoint their walker ensembles and resume across
job boundaries; this module serializes a population (positions, weights,
ages, properties, anonymous buffers) to a compressed npz and restores it
bit-exactly.  Restart correctness is the whole point: the tests verify a
resumed run reproduces the uninterrupted one.
"""

from __future__ import annotations

import json
from typing import List

import numpy as np

from repro.particles.walker import Walker


CHECKPOINT_VERSION = 1


def population_arrays(walkers: List[Walker]) -> dict:
    """Flatten a population into the checkpoint array set (bit-exact).

    Shared by :func:`save_population` and the full-run checkpoints in
    :mod:`repro.output.runstate`.
    """
    if not walkers:
        raise ValueError("refusing to checkpoint an empty population")
    n = walkers[0].n
    if any(w.n != n for w in walkers):
        raise ValueError("walkers disagree on particle count")
    buf_sizes = np.array([w.buffer.size for w in walkers], dtype=np.int64)
    if len({int(s) for s in buf_sizes}) > 1:
        raise ValueError("walkers disagree on buffer layout")
    return {
        "R": np.stack([w.R for w in walkers]),
        "weights": np.array([w.weight for w in walkers]),
        "multiplicities": np.array([w.multiplicity for w in walkers]),
        "ages": np.array([w.age for w in walkers], dtype=np.int64),
        "buffers": (np.stack([w.buffer.as_array() for w in walkers])
                    if buf_sizes[0] > 0 else np.zeros((len(walkers), 0))),
        "buffer_dtype": str(walkers[0].buffer.dtype),
        "properties": json.dumps([w.properties for w in walkers]),
    }


def population_from_arrays(data) -> List[Walker]:
    """Rebuild the walker list from :func:`population_arrays` output."""
    R = data["R"]
    weights = data["weights"]
    mults = data["multiplicities"]
    ages = data["ages"]
    buffers = data["buffers"]
    buffer_dtype = np.dtype(str(data["buffer_dtype"]))
    props = json.loads(str(data["properties"]))
    walkers = []
    for i in range(R.shape[0]):
        w = Walker.from_positions(R[i], dtype=buffer_dtype)
        w.weight = float(weights[i])
        w.multiplicity = float(mults[i])
        w.age = int(ages[i])
        w.properties = dict(props[i])
        if buffers.shape[1] > 0:
            w.buffer.register(buffers[i].astype(buffer_dtype))
            w.buffer.seal()
        walkers.append(w)
    return walkers


def save_population(path: str, walkers: List[Walker],
                    metadata: dict | None = None) -> None:
    """Write a walker population checkpoint."""
    arrays = population_arrays(walkers)
    np.savez_compressed(
        path,
        version=CHECKPOINT_VERSION,
        metadata=json.dumps(metadata or {}),
        **arrays,
    )


def load_population(path: str) -> tuple[List[Walker], dict]:
    """Read a checkpoint back into (walkers, metadata)."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        walkers = population_from_arrays(data)
        metadata = json.loads(str(data["metadata"]))
    return walkers, metadata
