"""Full-run checkpoint/restart: RNG streams, walkers, online stats, trace.

Promotes the drivers' generation-start crash snapshots (which only
survive *within* a run) to durable on-disk checkpoints a new process can
resume from.  A checkpoint written at the end of generation ``N``
captures everything the continuation depends on:

* every RNG stream's generator state (``Generator.bit_generator.state``
  — for spawned per-walker streams the spawn keys are implied by the
  master seed recorded in ``meta``, and the *states* stored here already
  include any fast-forward),
* the walker population (scalar drivers) or the shared-memory state
  field arrays (parallel driver),
* the exact :class:`~repro.stats.online.OnlineScalarStats` states,
* the durable trace position (rows/chunks/bytes) to truncate/append at,
* driver scalars (trial energy, acceptance counters, ...).

The restart contract — asserted by ``tests/integration/`` — is that a
run killed after generation ``N`` and resumed from this checkpoint
produces a byte-identical trace file and bit-identical online error
bars versus the same run left uninterrupted.

Writes are atomic (``os.replace`` of a fully-written temp file), so a
kill *during* checkpointing leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.output.checkpoint import population_arrays, population_from_arrays
from repro.output.stream import TracePosition

__all__ = [
    "RUNSTATE_VERSION",
    "RunCheckpoint",
    "save_run_checkpoint",
    "load_run_checkpoint",
    "rng_state",
    "restore_rng",
]

RUNSTATE_VERSION = 1


def rng_state(rng: np.random.Generator) -> dict:
    """JSON-able snapshot of a Generator's bit-stream position."""
    return rng.bit_generator.state


def restore_rng(rng: np.random.Generator, state: dict) -> None:
    """Restore a Generator to a snapshotted bit-stream position."""
    rng.bit_generator.state = state


@dataclass
class RunCheckpoint:
    """Everything needed to continue a run bitwise from generation ``step``."""

    kind: str                       # "vmc" | "dmc" | "parallel"
    step: int                       # completed generations
    rng_states: Dict[str, dict] = field(default_factory=dict)
    scalars: Dict[str, float] = field(default_factory=dict)
    walkers: Optional[List] = None                     # scalar drivers
    shared_state: Optional[Dict[str, np.ndarray]] = None   # parallel driver
    online_state: Optional[dict] = None
    trace_position: np.ndarray = field(
        default_factory=lambda: TracePosition().as_array())
    meta: Dict = field(default_factory=dict)
    path: Optional[str] = None      # where it was loaded from (set on load)


def save_run_checkpoint(path: str, ckpt: RunCheckpoint) -> None:
    """Atomically serialize a :class:`RunCheckpoint` to ``path`` (npz)."""
    arrays: Dict[str, object] = {
        "version": np.int64(RUNSTATE_VERSION),
        "kind": ckpt.kind,
        "step": np.int64(ckpt.step),
        "rng_states": json.dumps(ckpt.rng_states, sort_keys=True),
        "scalars": json.dumps(ckpt.scalars, sort_keys=True),
        "trace_position": np.asarray(ckpt.trace_position, dtype=np.int64),
        "meta": json.dumps(ckpt.meta, sort_keys=True),
        "has_walkers": np.int64(1 if ckpt.walkers is not None else 0),
    }
    if ckpt.walkers is not None:
        for key, value in population_arrays(ckpt.walkers).items():
            arrays[f"pop_{key}"] = value
    shm_names = sorted(ckpt.shared_state) if ckpt.shared_state else []
    arrays["shm_names"] = json.dumps(shm_names)
    for name in shm_names:
        arrays[f"shm_{name}"] = np.asarray(ckpt.shared_state[name])
    online_names = sorted(ckpt.online_state) if ckpt.online_state else []
    arrays["online_names"] = json.dumps(online_names)
    for name in online_names:
        state = ckpt.online_state[name]
        for key in sorted(state):
            arrays[f"online__{name}__{key}"] = np.asarray(state[key])
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    os.replace(tmp, path)


def load_run_checkpoint(path: str) -> RunCheckpoint:
    """Read a :class:`RunCheckpoint` back, bit-exactly."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != RUNSTATE_VERSION:
            raise ValueError(f"{path}: unsupported run-checkpoint version "
                             f"{version} (expected {RUNSTATE_VERSION})")
        ckpt = RunCheckpoint(
            kind=str(data["kind"]),
            step=int(data["step"]),
            rng_states=json.loads(str(data["rng_states"])),
            scalars=json.loads(str(data["scalars"])),
            trace_position=np.asarray(data["trace_position"],
                                      dtype=np.int64),
            meta=json.loads(str(data["meta"])),
            path=path,
        )
        if int(data["has_walkers"]):
            pop = {key[len("pop_"):]: data[key] for key in data.files
                   if key.startswith("pop_")}
            ckpt.walkers = population_from_arrays(pop)
        shm_names = json.loads(str(data["shm_names"]))
        if shm_names:
            ckpt.shared_state = {name: np.array(data[f"shm_{name}"])
                                 for name in shm_names}
        online_names = json.loads(str(data["online_names"]))
        if online_names:
            online: Dict[str, Dict[str, np.ndarray]] = {}
            prefix_keys = [key for key in data.files
                           if key.startswith("online__")]
            for name in online_names:
                marker = f"online__{name}__"
                online[name] = {key[len(marker):]: np.array(data[key])
                                for key in prefix_keys
                                if key.startswith(marker)}
            ckpt.online_state = online
    return ckpt
