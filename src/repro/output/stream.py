"""Append-only chunked binary estimator traces + the driver stream bundle.

Replaces end-of-run in-memory array dumps: drivers append one row per
generation (per-walker local energies, weights and Hamiltonian
components) to an on-disk trace while feeding the same samples to the
online reblocker, so long runs report converged error bars *while
running* and can be killed and resumed bitwise.

File format (``repro.trace`` version 1)
---------------------------------------
::

    header:  b"RQTR" | u16 version | u16 reserved
             | u32 json_len | header_json | u32 crc32(header_json)
    chunk:   b"CHNK" | u64 chunk_index | u32 n_rows
             | u64 payload_len | payload | u32 crc32(payload)
    row:     u64 step | u32 nw | field_0 bytes | field_1 bytes | ...

``header_json`` is canonical (sorted keys, no timestamps) so two runs of
the same configuration produce byte-identical files — the restart
battery compares whole files with ``filecmp``/bytes equality.  Each
field is declared in the header as ``(name, dtype, tail_shape)`` and a
row stores its C-order bytes with leading axis ``nw`` (the walker
count, which may vary per row under DMC branching).  Every chunk is
independently CRC-protected; readers raise *typed* errors naming the
chunk (:class:`TraceCorruptionError`, :class:`TraceTruncationError`,
:class:`TraceSchemaError`) instead of returning garbage, and resuming a
writer re-validates the retained prefix so a restart refuses to
continue from a damaged trace.

Per-crowd segment files carry ``meta["segment"] = {crowd, n_crowds,
total_walkers}``; :func:`merge_crowd_segments` interleaves them in
walker order (walker ``w`` lives in crowd ``w % K`` at local slot
``w // K``) reproducing the parent's canonical trace exactly.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import (Dict, IO, Iterator, List, Mapping, NamedTuple, Optional,
                    Sequence, Tuple)

import numpy as np

from repro.metrics import METRICS

__all__ = [
    "TRACE_VERSION",
    "TraceField",
    "TracePosition",
    "TraceError",
    "TraceSchemaError",
    "TraceCorruptionError",
    "TraceTruncationError",
    "TraceWriter",
    "TraceReader",
    "merge_crowd_segments",
    "StreamSet",
]

TRACE_VERSION = 1

_HEADER_MAGIC = b"RQTR"
_CHUNK_MAGIC = b"CHNK"
_HEADER_FIXED = struct.Struct("<4sHHI")      # magic, version, reserved, json len
_CHUNK_FIXED = struct.Struct("<4sQIQ")       # magic, index, n_rows, payload len
_ROW_FIXED = struct.Struct("<QI")            # step, nw
_CRC = struct.Struct("<I")


class TraceField(NamedTuple):
    """One per-walker column: ``name``, numpy dtype string, tail shape."""

    name: str
    dtype: str
    shape: Tuple[int, ...] = ()


@dataclass(frozen=True)
class TracePosition:
    """Writer offset captured in run checkpoints (rows, chunks, bytes)."""

    rows: int = 0
    chunks: int = 0
    bytes: int = 0

    def as_array(self) -> np.ndarray:
        return np.array([self.rows, self.chunks, self.bytes], dtype=np.int64)

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "TracePosition":
        a = np.asarray(arr, dtype=np.int64)
        return cls(rows=int(a[0]), chunks=int(a[1]), bytes=int(a[2]))


class TraceError(Exception):
    """Base class for trace format errors."""


class TraceSchemaError(TraceError):
    """Bad magic, unsupported version, or field declaration mismatch."""


class TraceCorruptionError(TraceError):
    """A CRC or structural check failed inside an identified chunk."""

    def __init__(self, message: str, path: str = "",
                 chunk_index: Optional[int] = None) -> None:
        super().__init__(message)
        self.path = path
        self.chunk_index = chunk_index


class TraceTruncationError(TraceError):
    """The file ends mid-chunk (or a segment is missing rows)."""

    def __init__(self, message: str, path: str = "",
                 chunk_index: Optional[int] = None) -> None:
        super().__init__(message)
        self.path = path
        self.chunk_index = chunk_index


def _encode_header(fields: Sequence[TraceField], meta: Mapping) -> bytes:
    doc = {
        "format": "repro.trace",
        "version": TRACE_VERSION,
        "fields": [{"name": f.name, "dtype": f.dtype,
                    "shape": list(f.shape)} for f in fields],
        "meta": dict(meta),
    }
    payload = json.dumps(doc, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    head = _HEADER_FIXED.pack(_HEADER_MAGIC, TRACE_VERSION, 0, len(payload))
    return head + payload + _CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF)


def _decode_header(fh: IO[bytes], path: str
                   ) -> Tuple[Tuple[TraceField, ...], Dict, int]:
    raw = fh.read(_HEADER_FIXED.size)
    if len(raw) < _HEADER_FIXED.size:
        raise TraceSchemaError(f"{path}: file too short for a trace header")
    magic, version, _reserved, json_len = _HEADER_FIXED.unpack(raw)
    if magic != _HEADER_MAGIC:
        raise TraceSchemaError(f"{path}: bad magic {magic!r} "
                               f"(expected {_HEADER_MAGIC!r})")
    if version != TRACE_VERSION:
        raise TraceSchemaError(f"{path}: unsupported trace version {version} "
                               f"(expected {TRACE_VERSION})")
    payload = fh.read(json_len)
    crc_raw = fh.read(_CRC.size)
    if len(payload) < json_len or len(crc_raw) < _CRC.size:
        raise TraceSchemaError(f"{path}: truncated trace header")
    (crc,) = _CRC.unpack(crc_raw)
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise TraceCorruptionError(f"{path}: header CRC mismatch", path=path)
    doc = json.loads(payload.decode("utf-8"))
    fields = tuple(TraceField(f["name"], f["dtype"], tuple(f["shape"]))
                   for f in doc["fields"])
    header_bytes = _HEADER_FIXED.size + json_len + _CRC.size
    return fields, doc.get("meta", {}), header_bytes


class TraceWriter:
    """Buffered append-only writer; one chunk per ``flush_every`` rows.

    Chunk boundaries are a pure function of the row sequence and
    ``flush_every`` (plus explicit :meth:`flush` calls at checkpoints),
    so an uninterrupted run and a kill/resume run configured identically
    produce byte-identical files.
    """

    def __init__(self, path: str, fields: Sequence[TraceField],
                 meta: Optional[Mapping] = None, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = str(path)
        self.fields = tuple(fields)
        self.meta = dict(meta or {})
        self.flush_every = int(flush_every)
        self._dtypes = tuple(np.dtype(f.dtype) for f in self.fields)
        self._buffer: List[bytes] = []
        self._buffer_rows = 0
        self._rows = 0
        self._chunks = 0
        self._fh: Optional[IO[bytes]] = open(self.path, "wb")
        header = _encode_header(self.fields, self.meta)
        self._fh.write(header)
        self._fh.flush()
        self._bytes = len(header)

    # -- factory: continue an existing file from a checkpointed position --
    @classmethod
    def resume(cls, path: str, position: TracePosition,
               flush_every: int = 1) -> "TraceWriter":
        """Reopen ``path``, verify the prefix up to ``position``, truncate.

        The retained prefix is CRC-validated chunk by chunk; any damage
        raises the reader's typed error, i.e. a restart *refuses* to
        continue from a corrupt trace rather than appending to it.
        """
        reader = TraceReader(path)
        try:
            rows = 0
            chunks = 0
            offset = reader.header_bytes
            for index, chunk_off, chunk_rows, nbytes in reader._scan_chunks(
                    stop_at=position.bytes):
                rows += len(chunk_rows)
                chunks = index + 1
                offset = chunk_off + nbytes
            if offset != position.bytes or rows != position.rows \
                    or chunks != position.chunks:
                raise TraceTruncationError(
                    f"{path}: checkpoint expects {position.rows} rows / "
                    f"{position.chunks} chunks / {position.bytes} bytes but "
                    f"validated prefix has {rows} rows / {chunks} chunks / "
                    f"{offset} bytes", path=path,
                    chunk_index=max(chunks - 1, 0))
            fields, meta = reader.fields, reader.meta
        finally:
            reader.close()
        self = cls.__new__(cls)
        self.path = str(path)
        self.fields = fields
        self.meta = dict(meta)
        self.flush_every = int(flush_every)
        self._dtypes = tuple(np.dtype(f.dtype) for f in fields)
        self._buffer = []
        self._buffer_rows = 0
        self._rows = position.rows
        self._chunks = position.chunks
        self._bytes = position.bytes
        fh = open(path, "r+b")
        fh.truncate(position.bytes)
        fh.seek(position.bytes)
        self._fh = fh
        return self

    @classmethod
    def reopen_below_step(cls, path: str, step: int,
                          flush_every: int = 1) -> "TraceWriter":
        """Reopen keeping only whole chunks whose rows all have step < ``step``.

        Used by respawned crowd workers to roll their segment file back
        to the replay generation; chunk boundaries must align with the
        cut (they do: segments flush every generation).
        """
        reader = TraceReader(path)
        try:
            rows = 0
            chunks = 0
            offset = reader.header_bytes
            for index, chunk_off, chunk_rows, nbytes in reader._scan_chunks():
                steps = [s for s, _ in chunk_rows]
                if steps and steps[0] >= step:
                    break
                if steps and steps[-1] >= step:
                    raise TraceTruncationError(
                        f"{path}: chunk {index} straddles step {step}; "
                        f"cannot truncate mid-chunk", path=path,
                        chunk_index=index)
                rows += len(chunk_rows)
                chunks = index + 1
                offset = chunk_off + nbytes
            fields, meta = reader.fields, reader.meta
        finally:
            reader.close()
        position = TracePosition(rows=rows, chunks=chunks, bytes=offset)
        self = cls.resume(path, position, flush_every=flush_every)
        return self

    # ------------------------------------------------------------------
    @property
    def position(self) -> TracePosition:
        """Durable position (buffered rows excluded — call flush first)."""
        return TracePosition(rows=self._rows, chunks=self._chunks,
                             bytes=self._bytes)

    @property
    def rows_written(self) -> int:
        return self._rows + self._buffer_rows

    def append_row(self, step: int, values: Mapping[str, np.ndarray]) -> None:
        """Buffer one generation row; flushes every ``flush_every`` rows."""
        first = self.fields[0]
        nw = int(np.asarray(values[first.name]).shape[0])
        parts = [_ROW_FIXED.pack(int(step), nw)]
        for field, dtype in zip(self.fields, self._dtypes):
            arr = np.ascontiguousarray(values[field.name], dtype=dtype)
            expect = (nw,) + field.shape
            if arr.shape != expect:
                raise ValueError(
                    f"field {field.name!r}: shape {arr.shape} != {expect}")
            parts.append(arr.tobytes())
        self._buffer.append(b"".join(parts))
        self._buffer_rows += 1
        if self._buffer_rows >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered rows as one CRC-sealed chunk and flush the file."""
        if self._fh is None:
            raise ValueError(f"{self.path}: writer is closed")
        if self._buffer_rows == 0:
            return
        payload = b"".join(self._buffer)
        head = _CHUNK_FIXED.pack(_CHUNK_MAGIC, self._chunks,
                                 self._buffer_rows, len(payload))
        tail = _CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF)
        self._fh.write(head + payload + tail)
        self._fh.flush()
        nbytes = len(head) + len(payload) + len(tail)
        self._bytes += nbytes
        self._rows += self._buffer_rows
        self._chunks += 1
        self._buffer = []
        self._buffer_rows = 0
        METRICS.count("trace_chunks")
        METRICS.count("trace_bytes", nbytes)
        METRICS.add_bytes(nbytes)

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceReader:
    """Validating reader; every access error is typed and names its chunk."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        if not os.path.exists(self.path):
            raise TraceTruncationError(f"{self.path}: trace file missing",
                                       path=self.path)
        self._fh: Optional[IO[bytes]] = open(self.path, "rb")
        self.fields, self.meta, self.header_bytes = _decode_header(
            self._fh, self.path)
        self._dtypes = tuple(np.dtype(f.dtype) for f in self.fields)

    def _decode_rows(self, payload: bytes, n_rows: int, index: int
                     ) -> List[Tuple[int, Dict[str, np.ndarray]]]:
        rows = []
        off = 0
        size = len(payload)
        for _ in range(n_rows):
            if off + _ROW_FIXED.size > size:
                raise TraceCorruptionError(
                    f"{self.path}: chunk {index} row header overruns payload",
                    path=self.path, chunk_index=index)
            step, nw = _ROW_FIXED.unpack_from(payload, off)
            off += _ROW_FIXED.size
            values: Dict[str, np.ndarray] = {}
            for field, dtype in zip(self.fields, self._dtypes):
                shape = (nw,) + field.shape
                nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                if off + nbytes > size:
                    raise TraceCorruptionError(
                        f"{self.path}: chunk {index} field {field.name!r} "
                        f"overruns payload", path=self.path, chunk_index=index)
                arr = np.frombuffer(payload, dtype=dtype, count=int(
                    np.prod(shape, dtype=np.int64)), offset=off)
                values[field.name] = arr.reshape(shape).copy()
                off += nbytes
            rows.append((int(step), values))
        if off != size:
            raise TraceCorruptionError(
                f"{self.path}: chunk {index} payload has {size - off} "
                f"trailing bytes", path=self.path, chunk_index=index)
        return rows

    def _scan_chunks(self, stop_at: Optional[int] = None
                     ) -> Iterator[Tuple[int, int,
                                         List[Tuple[int, Dict[str, np.ndarray]]],
                                         int]]:
        """Yield (index, byte_offset, rows, total_bytes) per valid chunk."""
        fh = self._fh
        if fh is None:
            raise ValueError(f"{self.path}: reader is closed")
        fh.seek(self.header_bytes)
        expect_index = 0
        offset = self.header_bytes
        while True:
            if stop_at is not None and offset >= stop_at:
                return
            head = fh.read(_CHUNK_FIXED.size)
            if not head:
                return
            if len(head) < _CHUNK_FIXED.size:
                raise TraceTruncationError(
                    f"{self.path}: file ends inside the header of chunk "
                    f"{expect_index}", path=self.path,
                    chunk_index=expect_index)
            magic, index, n_rows, payload_len = _CHUNK_FIXED.unpack(head)
            if magic != _CHUNK_MAGIC:
                raise TraceCorruptionError(
                    f"{self.path}: bad chunk magic at offset {offset} "
                    f"(chunk {expect_index})", path=self.path,
                    chunk_index=expect_index)
            if index != expect_index:
                raise TraceCorruptionError(
                    f"{self.path}: chunk index {index} at offset {offset} "
                    f"(expected {expect_index})", path=self.path,
                    chunk_index=expect_index)
            payload = fh.read(payload_len)
            crc_raw = fh.read(_CRC.size)
            if len(payload) < payload_len or len(crc_raw) < _CRC.size:
                raise TraceTruncationError(
                    f"{self.path}: file ends mid-chunk {index} "
                    f"({len(payload)}/{payload_len} payload bytes)",
                    path=self.path, chunk_index=index)
            (crc,) = _CRC.unpack(crc_raw)
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                raise TraceCorruptionError(
                    f"{self.path}: CRC mismatch in chunk {index}",
                    path=self.path, chunk_index=index)
            rows = self._decode_rows(payload, n_rows, index)
            total = _CHUNK_FIXED.size + payload_len + _CRC.size
            yield index, offset, rows, total
            offset += total
            expect_index += 1

    def iter_rows(self) -> Iterator[Tuple[int, Dict[str, np.ndarray]]]:
        for _index, _offset, rows, _nbytes in self._scan_chunks():
            for row in rows:
                yield row

    def read_all(self) -> Tuple[np.ndarray, List[Dict[str, np.ndarray]]]:
        """(steps, rows) — row dicts keep per-row walker counts intact."""
        steps: List[int] = []
        rows: List[Dict[str, np.ndarray]] = []
        for step, values in self.iter_rows():
            steps.append(step)
            rows.append(values)
        return np.asarray(steps, dtype=np.int64), rows

    def read_concat(self, name: str) -> np.ndarray:
        """Field ``name`` concatenated across rows in (step, walker) order.

        For scalar fields this is exactly the sample stream the online
        reblocker consumed, so offline recomputation on the returned
        array is the parity oracle for the online results.
        """
        parts = [values[name] for _step, values in self.iter_rows()]
        if not parts:
            dtype = dict((f.name, f.dtype) for f in self.fields)[name]
            return np.empty((0,), dtype=dtype)
        return np.concatenate(parts, axis=0)

    def validate(self) -> TracePosition:
        """Full scan; returns the durable end position or raises typed."""
        rows = 0
        chunks = 0
        offset = self.header_bytes
        for index, chunk_off, chunk_rows, nbytes in self._scan_chunks():
            rows += len(chunk_rows)
            chunks = index + 1
            offset = chunk_off + nbytes
        return TracePosition(rows=rows, chunks=chunks, bytes=offset)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def merge_crowd_segments(segment_paths: Sequence[str], out_path: str,
                         flush_every: int = 1) -> TracePosition:
    """Interleave per-crowd segment traces into the walker-ordered trace.

    Walker ``w`` is dealt to crowd ``w % K`` at local slot ``w // K``
    (the shm layer's round-robin deal), so merged row ``out[c::K] =
    segment_c_row`` reconstructs the parent's canonical walker order
    exactly.  Raises :class:`TraceTruncationError` naming the lagging
    segment if row counts or steps disagree (e.g. a deleted or
    short-written segment).
    """
    readers = []
    try:
        for path in segment_paths:
            readers.append(TraceReader(path))
        metas = [r.meta.get("segment") for r in readers]
        if any(m is None for m in metas):
            bad = segment_paths[metas.index(None)]
            raise TraceSchemaError(f"{bad}: not a crowd segment trace "
                                   f"(no meta['segment'])")
        k = len(readers)
        if sorted(m["crowd"] for m in metas) != list(range(k)) \
                or any(m["n_crowds"] != k for m in metas):
            raise TraceSchemaError(
                f"expected segments for crowds 0..{k - 1} of {k}, got "
                f"{[(m['crowd'], m['n_crowds']) for m in metas]}")
        order = sorted(range(k), key=lambda i: metas[i]["crowd"])
        readers = [readers[i] for i in order]
        fields = readers[0].fields
        for r in readers[1:]:
            if r.fields != fields:
                raise TraceSchemaError(
                    f"{r.path}: segment fields differ from {readers[0].path}")
        meta = {key: value for key, value in readers[0].meta.items()
                if key != "segment"}
        all_rows = [r.read_all() for r in readers]
        n_rows = len(all_rows[0][1])
        for r, (steps, rows) in zip(readers, all_rows):
            if len(rows) != n_rows:
                raise TraceTruncationError(
                    f"{r.path}: segment has {len(rows)} rows, "
                    f"{readers[0].path} has {n_rows}", path=r.path,
                    chunk_index=min(len(rows), n_rows))
        with TraceWriter(out_path, fields, meta=meta,
                         flush_every=flush_every) as writer:
            for i in range(n_rows):
                step0 = all_rows[0][0][i]
                nw_total = 0
                for r, (steps, rows) in zip(readers, all_rows):
                    if steps[i] != step0:
                        raise TraceCorruptionError(
                            f"{r.path}: row {i} is step {steps[i]}, "
                            f"{readers[0].path} has step {step0}",
                            path=r.path, chunk_index=i)
                    nw_total += rows[i][fields[0].name].shape[0]
                merged: Dict[str, np.ndarray] = {}
                for field in fields:
                    dtype = np.dtype(field.dtype)
                    out = np.empty((nw_total,) + field.shape, dtype=dtype)
                    for c, (_steps, rows) in enumerate(all_rows):
                        out[c::k] = rows[i][field.name]
                    merged[field.name] = out
                writer.append_row(int(step0), merged)
            writer.flush()
            position = writer.position
        return position
    finally:
        for r in readers:
            r.close()


# ----------------------------------------------------------------------
# Driver-facing bundle: trace + online statistics + checkpoint cadence
# ----------------------------------------------------------------------

class StreamSet:
    """What a driver streams each generation: trace rows + online stats.

    The trace writer is created lazily on the first
    :meth:`record` call (component names are only known once the
    Hamiltonian has evaluated), with a schema-versioned header built
    from deterministic metadata only — no wall-clock — so equal runs
    yield byte-equal files.

    ``checkpoint_every``/``checkpoint_path`` only express cadence; the
    drivers own what goes *into* the checkpoint (see
    :mod:`repro.output.runstate`).
    """

    def __init__(self, trace_path: Optional[str] = None,
                 online: Optional[object] = None,
                 meta: Optional[Mapping] = None,
                 flush_every: int = 1,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_every: int = 0) -> None:
        from repro.stats.online import OnlineScalarStats
        self.trace_path = str(trace_path) if trace_path else None
        self.online = online if online is not None else OnlineScalarStats()
        self.meta = dict(meta or {})
        self.flush_every = int(flush_every)
        self.checkpoint_path = (str(checkpoint_path)
                                if checkpoint_path else None)
        self.checkpoint_every = int(checkpoint_every)
        self.writer: Optional[TraceWriter] = None
        self.component_names: Tuple[str, ...] = ()

    # -- resume ---------------------------------------------------------
    @classmethod
    def resume(cls, checkpoint, trace_path: Optional[str] = None,
               flush_every: int = 1,
               checkpoint_path: Optional[str] = None,
               checkpoint_every: int = 0) -> "StreamSet":
        """Rebuild the stream bundle a checkpointed run was using.

        Restores the online-stat states exactly and reopens the trace at
        the checkpointed offset after CRC-validating the retained
        prefix — a corrupt or short trace raises the reader's typed
        error and the restart refuses to continue.
        """
        from repro.stats.online import OnlineScalarStats
        online = OnlineScalarStats.from_state(checkpoint.online_state or {})
        self = cls(trace_path=None, online=online,
                   checkpoint_path=(checkpoint_path
                                    or getattr(checkpoint, "path", None)),
                   checkpoint_every=checkpoint_every)
        if trace_path is not None:
            position = TracePosition.from_array(checkpoint.trace_position)
            self.trace_path = str(trace_path)
            self.flush_every = int(flush_every)
            self.writer = TraceWriter.resume(trace_path, position,
                                             flush_every=flush_every)
            self.meta = dict(self.writer.meta)
            names = self.writer.meta.get("components", [])
            self.component_names = tuple(names)
        return self

    # -------------------------------------------------------------------
    def _open_writer(self, components: Optional[Mapping[str, np.ndarray]]
                     ) -> None:
        names = tuple(sorted(components)) if components else ()
        self.component_names = names
        fields = [TraceField("weight", "<f8"),
                  TraceField("local_energy", "<f8")]
        if names:
            fields.append(TraceField("components", "<f8", (len(names),)))
        meta = dict(self.meta)
        meta["components"] = list(names)
        self.writer = TraceWriter(self.trace_path, fields, meta=meta,
                                  flush_every=self.flush_every)

    def record(self, step: int, local_energy: np.ndarray,
               weights: Optional[np.ndarray] = None,
               components: Optional[Mapping[str, np.ndarray]] = None) -> None:
        """Stream one generation: nw local energies/weights (+components).

        Arrays must be in walker order — the same order the in-memory
        EstimatorManager accumulates — so the online reblocker and the
        offline recomputation on the trace see identical sample streams.
        """
        el = np.asarray(local_energy, dtype=np.float64)
        nw = el.shape[0]
        if weights is None:
            w = np.ones(nw, dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64)
        if self.trace_path is not None and self.writer is None:
            self._open_writer(components)
        if self.writer is not None:
            row = {"weight": w, "local_energy": el}
            if self.component_names:
                comp = np.empty((nw, len(self.component_names)),
                                dtype=np.float64)
                for j, name in enumerate(self.component_names):
                    comp[:, j] = np.asarray(components[name],
                                            dtype=np.float64)
                row["components"] = comp
            self.writer.append_row(step, row)
        if self.online is not None:
            self.online.add_array("LocalEnergy", el, w)
            for name in self.component_names:
                self.online.add_array(
                    name, np.asarray(components[name], dtype=np.float64), w)
            if not self.component_names and components:
                for name in sorted(components):
                    self.online.add_array(
                        name, np.asarray(components[name], dtype=np.float64),
                        w)

    def want_checkpoint(self, step: int) -> bool:
        return (self.checkpoint_every > 0
                and self.checkpoint_path is not None
                and step % self.checkpoint_every == 0)

    def flush(self) -> None:
        if self.writer is not None:
            self.writer.flush()

    @property
    def trace_position(self) -> TracePosition:
        """Durable trace position for checkpoints (flushes first)."""
        if self.writer is None:
            return TracePosition()
        self.writer.flush()
        return self.writer.position

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()

    def __enter__(self) -> "StreamSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
