"""scalar.dat and JSON summary writers/readers."""

from __future__ import annotations

import json
from typing import Dict, List

import numpy as np


def write_scalar_dat(path: str, estimators, step_offset: int = 0) -> None:
    """Write an EstimatorManager's series as a scalar.dat table.

    Columns: ``index`` then one per estimator name (QMCPACK order:
    LocalEnergy first when present).  Series of unequal length are
    right-padded with NaN so every row is complete.
    """
    names = estimators.names()
    if "LocalEnergy" in names:
        names = ["LocalEnergy"] + [n for n in names if n != "LocalEnergy"]
    series = {n: estimators.series(n) for n in names}
    nrows = max((s.size for s in series.values()), default=0)
    with open(path, "w") as f:
        f.write("#   index   " + "   ".join(names) + "\n")
        for i in range(nrows):
            vals = []
            for n in names:
                s = series[n]
                vals.append(f"{s[i]:.12e}" if i < s.size else "nan")
            f.write(f"{step_offset + i:8d}   " + "   ".join(vals) + "\n")


def read_scalar_dat(path: str) -> Dict[str, np.ndarray]:
    """Read a scalar.dat back into {column: array} (index included)."""
    with open(path) as f:
        header = f.readline()
        if not header.startswith("#"):
            raise ValueError(f"{path}: missing # header line")
        names = header[1:].split()
        rows: List[List[float]] = []
        for line in f:
            if not line.strip():
                continue
            rows.append([float(tok) for tok in line.split()])
    data = np.asarray(rows, dtype=np.float64)
    if data.size and data.shape[1] != len(names):
        raise ValueError(f"{path}: ragged rows")
    return {n: data[:, j] if data.size else np.empty(0)
            for j, n in enumerate(names)}


def result_summary_dict(result) -> dict:
    """Portable summary of a QMCResult (estimates, figures of merit)."""
    out = {
        "method": result.method,
        "steps": result.steps,
        "mean_walkers": result.mean_walkers,
        "mean_energy": result.mean_energy,
        "energy_error": result.energy_error(),
        "acceptance": result.acceptance,
        "elapsed_seconds": result.elapsed,
        "throughput": result.throughput,
        "populations": list(result.populations),
    }
    if result.estimators is not None:
        out["estimates"] = {}
        for name in result.estimators.names():
            est = result.estimators.estimate(name)
            out["estimates"][name] = {
                "mean": est.mean, "error": est.error,
                "variance": est.variance, "tau": est.tau,
                "n_samples": est.n_samples,
                "n_equilibration": est.n_equilibration,
            }
    if result.profile is not None:
        out["profile"] = result.profile.normalized()
    return out


def write_json_summary(path: str, result) -> None:
    def _clean(o):
        if isinstance(o, float) and not np.isfinite(o):
            return None
        if isinstance(o, dict):
            return {k: _clean(v) for k, v in o.items()}
        if isinstance(o, list):
            return [_clean(v) for v in o]
        return o

    with open(path, "w") as f:
        json.dump(_clean(result_summary_dict(result)), f, indent=2)
