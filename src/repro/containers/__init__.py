"""Container abstractions mirroring QMCPACK's particle-attribute storage.

Two data layouts coexist, exactly as in the paper:

* **AoS** (array of structures): a Python list of :class:`TinyVector`
  objects, the analogue of ``Vector<TinyVector<T,D>>``.  Operating on it
  requires per-element interpreted loops — this is the "scalar code" of
  the reference implementation.
* **SoA** (structure of arrays): :class:`VectorSoaContainer`, the analogue
  of ``VectorSoaContainer<T,D>`` / ``Rsoa[D][Np]``, a padded, cache-aligned
  transposed layout on which NumPy kernels (our stand-in for SIMD units)
  operate one contiguous row at a time.

:class:`WalkerBuffer` reproduces the anonymous ``Buffer<T>`` each Walker
carries to checkpoint the internal state of the wavefunction components
between particle-by-particle sweeps.
"""

from repro.containers.aligned import CACHE_LINE_BYTES, aligned_empty, padded_size
from repro.containers.tinyvector import TinyVector
from repro.containers.vsc import VectorSoaContainer
from repro.containers.buffer import WalkerBuffer

__all__ = [
    "CACHE_LINE_BYTES",
    "aligned_empty",
    "padded_size",
    "TinyVector",
    "VectorSoaContainer",
    "WalkerBuffer",
]
