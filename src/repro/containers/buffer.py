"""``Buffer<T>`` — the anonymous walker buffer (``PooledData`` in QMCPACK).

The reference implementation's *store-over-compute* policy serializes the
complete internal state of every wavefunction component (distance tables,
Jastrow value/gradient/laplacian matrices, determinant inverses, …) into
one flat scalar buffer per walker.  Components ``register`` their payloads
once to reserve space, then ``put``/``get`` them each time a walker is
loaded into or stored from the per-thread compute objects.

The optimized code path shrinks what goes in here — that is precisely the
paper's Jastrow 5N² → 5N reduction — so the buffer also doubles as the
ground truth for the walker message size in the load-balancing model.
"""

from __future__ import annotations

import numpy as np


class WalkerBuffer:
    """A flat, append-only scalar pool with sequential get/put cursors.

    Usage mirrors QMCPACK's PooledData:

    1. *Registration*: each component calls :meth:`register` with its
       arrays; the buffer records sizes and reserves space.
    2. *Store*: :meth:`rewind` then :meth:`put` in registration order.
    3. *Load*: :meth:`rewind` then :meth:`get` in registration order.
    """

    def __init__(self, dtype=np.float64):
        self.dtype = np.dtype(dtype)
        self._data = np.zeros(0, dtype=self.dtype)
        self._cursor = 0
        self._sealed = False

    # -- registration phase ----------------------------------------------------
    def register(self, array: np.ndarray) -> slice:
        """Reserve space for ``array`` (flattened) and copy its contents in.

        Returns the slice of the pool assigned to this payload.
        """
        if self._sealed:
            raise RuntimeError("buffer already sealed; cannot register more data")
        flat = np.asarray(array, dtype=self.dtype).ravel()
        start = self._data.size
        self._data = np.concatenate([self._data, flat])
        return slice(start, start + flat.size)

    def register_scalar(self, value: float) -> slice:
        return self.register(np.array([value], dtype=self.dtype))

    def seal(self) -> None:
        """Freeze the layout; subsequent register() calls are errors."""
        self._sealed = True
        self._cursor = 0

    # -- cursor phase ------------------------------------------------------------
    def rewind(self) -> None:
        self._cursor = 0

    def put(self, array: np.ndarray) -> None:
        """Copy ``array`` into the pool at the cursor, advancing it."""
        flat = np.asarray(array).ravel()
        end = self._cursor + flat.size
        if end > self._data.size:
            raise ValueError(
                f"put of {flat.size} scalars overflows buffer "
                f"(cursor={self._cursor}, size={self._data.size})")
        self._data[self._cursor:end] = flat
        self._cursor = end

    def put_scalar(self, value: float) -> None:
        self.put(np.array([value]))

    def get(self, out: np.ndarray) -> np.ndarray:
        """Fill ``out`` from the pool at the cursor, advancing it."""
        n = out.size
        end = self._cursor + n
        if end > self._data.size:
            raise ValueError(
                f"get of {n} scalars overruns buffer "
                f"(cursor={self._cursor}, size={self._data.size})")
        out.ravel()[:] = self._data[self._cursor:end].reshape(-1).astype(out.dtype)
        self._cursor = end
        return out

    def get_scalar(self) -> float:
        out = np.zeros(1, dtype=self.dtype)
        self.get(out)
        return float(out[0])

    # -- bookkeeping ---------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of scalars held."""
        return self._data.size

    @property
    def nbytes(self) -> int:
        """Message size in bytes if this walker were sent over the wire."""
        return self._data.nbytes

    def as_array(self) -> np.ndarray:
        """The raw pool (a view) — what send/recv of a Walker serializes."""
        return self._data

    def load_from(self, other: "WalkerBuffer") -> None:
        """Adopt another buffer's contents (walker receive)."""
        if other._data.size != self._data.size:
            self._data = other._data.copy()
        else:
            self._data[:] = other._data
        self._cursor = 0

    def copy(self) -> "WalkerBuffer":
        out = WalkerBuffer(self.dtype)
        out._data = self._data.copy()
        out._sealed = self._sealed
        return out

    def __repr__(self) -> str:
        return f"WalkerBuffer(size={self.size}, dtype={self.dtype.name})"
