"""``VectorSoaContainer<T,D>`` — the paper's central SoA container (Fig. 5).

Stores D rows of ``Np`` elements each (``Np`` = ``N`` rounded up to a whole
number of cache lines), so a D-dimensional attribute of N particles lives
as ``data[D][Np]`` instead of ``R[N][D]``.  Rows are contiguous and padded,
which is what lets the compiler (here: NumPy) run one vector operation per
row instead of N scalar operations.

The container interoperates with its AoS counterparts in place:
``copy_in`` accepts either an ``(N, D)`` ndarray or a list of
:class:`~repro.containers.tinyvector.TinyVector` (the AoS-to-SoA
assignment of ``loadWalker``).
"""

# repro: hot

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.containers.aligned import CACHE_LINE_BYTES, aligned_empty, padded_size
from repro.containers.tinyvector import TinyVector
from repro.precision.policy import resolve_value_dtype

AosLike = Union[np.ndarray, Sequence[TinyVector]]


class VectorSoaContainer:
    """A padded, aligned structure-of-arrays container of shape (D, Np).

    ``dtype`` may be a dtype-like, a :class:`~repro.precision.policy.
    PrecisionPolicy` (its ``value_dtype`` is used), or ``None`` for the
    default element type.
    """

    def __init__(self, n: int, d: int = 3, dtype=None,
                 alignment: int = CACHE_LINE_BYTES):
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if d < 1:
            raise ValueError(f"d must be positive, got {d}")
        self.n = int(n)
        self.d = int(d)
        self.dtype = resolve_value_dtype(dtype)
        self.alignment = int(alignment)
        self.np = padded_size(self.n, self.dtype, alignment)
        self.data = aligned_empty((self.d, self.np), self.dtype, alignment)
        # Zero the padding so reductions over full rows are safe.
        self.data[:, self.n:] = 0

    # -- element access --------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i: int) -> np.ndarray:  # repro: cold
        """Return particle ``i``'s D components (a strided gather, like the
        C++ ``operator[]`` returning a TinyVector)."""
        if not -self.n <= i < self.n:
            raise IndexError(f"particle index {i} out of range for n={self.n}")
        return self.data[:, i % self.n].copy()

    def __setitem__(self, i: int, value: Iterable[float]) -> None:
        if not -self.n <= i < self.n:
            raise IndexError(f"particle index {i} out of range for n={self.n}")
        self.data[:, i % self.n] = np.asarray(list(value), dtype=self.dtype)

    def row(self, dim: int) -> np.ndarray:
        """The contiguous row of one Cartesian component, *excluding* padding."""
        return self.data[dim, : self.n]

    def padded_row(self, dim: int) -> np.ndarray:
        """The contiguous row of one Cartesian component, *including* padding."""
        return self.data[dim]

    # -- AoS interop -----------------------------------------------------------
    def copy_in(self, aos: AosLike) -> "VectorSoaContainer":
        """AoS-to-SoA assignment (``Rsoa = awalker.R`` in Fig. 5)."""
        if isinstance(aos, np.ndarray):
            if aos.shape != (self.n, self.d):
                raise ValueError(
                    f"expected shape {(self.n, self.d)}, got {aos.shape}")
            self.data[:, : self.n] = aos.T
        else:
            if len(aos) != self.n:
                raise ValueError(f"expected {self.n} elements, got {len(aos)}")
            for i, tv in enumerate(aos):
                self.data[:, i] = tv.x
        return self

    def copy_out(self) -> np.ndarray:
        """Return an (N, D) AoS-ordered ndarray copy."""
        return self.data[:, : self.n].T.copy()

    def to_tinyvectors(self) -> list:  # repro: cold
        """Return the AoS list-of-TinyVector representation."""
        return [TinyVector(self.data[:, i]) for i in range(self.n)]

    # -- bookkeeping -----------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Bytes held including padding — what the allocator really charged."""
        return self.data.nbytes

    def astype(self, dtype) -> "VectorSoaContainer":
        """Return a copy of this container with a different element type."""
        out = VectorSoaContainer(self.n, self.d, dtype)
        out.data[:, : self.n] = self.data[:, : self.n].astype(dtype)
        return out

    def copy(self) -> "VectorSoaContainer":
        out = VectorSoaContainer(self.n, self.d, self.dtype)
        out.data[...] = self.data
        return out

    def __repr__(self) -> str:
        return (f"VectorSoaContainer(n={self.n}, d={self.d}, "
                f"np={self.np}, dtype={self.dtype.name})")
