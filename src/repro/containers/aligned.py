"""Cache-aligned allocation helpers.

QMCPACK's SoA containers use cache-aligned allocators (TBB's on Intel
platforms) and pad each row to a multiple of the SIMD width so every row
starts on a cache-line boundary.  NumPy's default allocator gives 16-byte
alignment at best, so :func:`aligned_empty` over-allocates and returns a
view whose data pointer is aligned to ``alignment`` bytes — the same trick
``aligned_alloc`` plays.
"""

# repro: hot

from __future__ import annotations

import numpy as np

from repro.precision.policy import resolve_value_dtype

#: Cache-line size assumed by the padding math (bytes).  64 on every
#: platform the paper targets (BDW, KNL, BG/Q).
CACHE_LINE_BYTES = 64


def padded_size(n: int, dtype=None, alignment: int = CACHE_LINE_BYTES) -> int:
    """Return ``n`` rounded up so a row of ``n`` elements fills whole cache lines.

    This is the ``Np`` of the paper's ``Rsoa[3][Np]``: the number of
    elements per row including SIMD/cache padding.

    >>> padded_size(5, np.float64)
    8
    >>> padded_size(8, np.float64)
    8
    >>> padded_size(5, np.float32)
    16
    """
    if n < 0:
        raise ValueError(f"size must be non-negative, got {n}")
    per_line = alignment // resolve_value_dtype(dtype).itemsize
    if per_line == 0:
        return n
    return ((n + per_line - 1) // per_line) * per_line


def aligned_empty(shape, dtype=None, alignment: int = CACHE_LINE_BYTES) -> np.ndarray:
    """Allocate an uninitialized array whose data pointer is ``alignment``-aligned.

    The returned array is C-contiguous.  Alignment matters little for
    NumPy's own kernels but keeps the container semantics faithful and
    lets the memory model account padding bytes identically to the C++
    allocators.
    """
    dtype = resolve_value_dtype(dtype)
    nbytes = int(np.prod(shape)) * dtype.itemsize
    buf = np.empty(nbytes + alignment, dtype=np.uint8)
    offset = (-buf.ctypes.data) % alignment
    view = buf[offset : offset + nbytes].view(dtype).reshape(shape)
    # Keep the backing buffer alive via the view's base chain.
    return view
