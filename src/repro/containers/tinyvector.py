"""``TinyVector<T,D>`` — the AoS element type of the reference code.

A deliberately scalar object: arithmetic happens component by component in
interpreted Python, exactly the abstraction-penalty pattern the paper's
reference profile exhibits (Sec. 6.1).  The optimized code path never
touches this class inside hot loops.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator


class TinyVector:
    """A fixed-dimension Cartesian vector stored as plain Python floats."""

    __slots__ = ("x",)

    def __init__(self, components: Iterable[float]):
        self.x = [float(c) for c in components]

    # -- construction helpers -------------------------------------------------
    @classmethod
    def zeros(cls, d: int) -> "TinyVector":
        return cls([0.0] * d)

    # -- protocol -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.x)

    def __iter__(self) -> Iterator[float]:
        return iter(self.x)

    def __getitem__(self, i: int) -> float:
        return self.x[i]

    def __setitem__(self, i: int, v: float) -> None:
        self.x[i] = float(v)

    def __repr__(self) -> str:
        return f"TinyVector({self.x})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, TinyVector):
            return NotImplemented
        return self.x == other.x

    def __hash__(self):
        return hash(tuple(self.x))

    # -- arithmetic (scalar, component-wise) -----------------------------------
    def __add__(self, other: "TinyVector") -> "TinyVector":
        return TinyVector(a + b for a, b in zip(self.x, other.x))

    def __sub__(self, other: "TinyVector") -> "TinyVector":
        return TinyVector(a - b for a, b in zip(self.x, other.x))

    def __mul__(self, s: float) -> "TinyVector":
        return TinyVector(a * s for a in self.x)

    __rmul__ = __mul__

    def __truediv__(self, s: float) -> "TinyVector":
        return TinyVector(a / s for a in self.x)

    def __neg__(self) -> "TinyVector":
        return TinyVector(-a for a in self.x)

    def dot(self, other: "TinyVector") -> float:
        return sum(a * b for a, b in zip(self.x, other.x))

    def norm2(self) -> float:
        return sum(a * a for a in self.x)

    def norm(self) -> float:
        return math.sqrt(self.norm2())

    def copy(self) -> "TinyVector":
        return TinyVector(self.x)
