"""Pluggable kernel backends (see docs/backends.md).

Public surface::

    from repro.backend import active, get_backend, use_backend

    get_backend("jax")          # explicit instance (BackendUnavailableError
                                # with install hints if jax is absent)
    with use_backend("jax"):    # thread-local override for a scope
        ...
    active()                    # what kernel call sites dispatch through

Resolution order: innermost ``use_backend``/``backend.scope()`` on this
thread, then the ``REPRO_BACKEND`` environment variable, then the
bitwise-exact ``numpy`` default.
"""

from repro.backend.base import (
    KERNEL_NAMES,
    BackendUnavailableError,
    KernelBackend,
)
from repro.backend.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    active,
    available_backends,
    get_backend,
    known_backends,
    register_backend,
    use_backend,
)

__all__ = [
    "KERNEL_NAMES",
    "BackendUnavailableError",
    "KernelBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "active",
    "available_backends",
    "get_backend",
    "known_backends",
    "register_backend",
    "use_backend",
]
