"""Backend registry: name -> :class:`KernelBackend` resolution.

Resolution order at every kernel call site (via :func:`active`):

1. the innermost :func:`use_backend` / ``KernelBackend.scope()`` context
   on this thread (the per-driver override);
2. the ``REPRO_BACKEND`` environment variable;
3. ``"numpy"``.

Backend construction is lazy and cached per name, so importing
``repro.backend`` costs nothing and a jax-less host only fails when
somebody actually asks for the jax backend.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Union

from repro.backend.base import BackendUnavailableError, KernelBackend

ENV_VAR = "REPRO_BACKEND"
DEFAULT_BACKEND = "numpy"


def _make_numpy() -> KernelBackend:
    from repro.backend.numpy_backend import NumpyBackend
    return NumpyBackend()


def _make_jax() -> KernelBackend:
    from repro.backend.jax_backend import JaxBackend  # may raise
    return JaxBackend()


#: name -> zero-arg factory; extend via :func:`register_backend`.
_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {
    "numpy": _make_numpy,
    "jax": _make_jax,
}

_instances: Dict[str, KernelBackend] = {}
_instances_lock = threading.Lock()
_tls = threading.local()


def register_backend(name: str,
                     factory: Callable[[], KernelBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _FACTORIES[str(name)] = factory
    with _instances_lock:
        _instances.pop(str(name), None)


def known_backends() -> List[str]:
    """Every registered name, constructible on this host or not."""
    return sorted(_FACTORIES)


def available_backends() -> List[str]:
    """Registered names whose backend actually constructs here."""
    out = []
    for name in known_backends():
        try:
            get_backend(name)
        except BackendUnavailableError:
            continue
        out.append(name)
    return out


def get_backend(name: Optional[Union[str, KernelBackend]] = None
                ) -> KernelBackend:
    """Resolve ``name`` to a backend instance.

    ``None`` resolves through ``REPRO_BACKEND`` then the default; a
    :class:`KernelBackend` instance passes through unchanged (the
    per-driver override accepts either form).  Unknown or
    unconstructible names raise :class:`BackendUnavailableError` with an
    actionable message.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = os.environ.get(ENV_VAR, "").strip() or DEFAULT_BACKEND
    name = str(name).lower()
    with _instances_lock:
        inst = _instances.get(name)
    if inst is not None:
        return inst
    factory = _FACTORIES.get(name)
    if factory is None:
        raise BackendUnavailableError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{', '.join(known_backends())} (set {ENV_VAR} or pass "
            f"backend=... to the driver)")
    try:
        inst = factory()
    except BackendUnavailableError:
        raise
    except ImportError as exc:
        raise BackendUnavailableError(
            f"kernel backend {name!r} is registered but its "
            f"dependencies are missing on this host: {exc}. "
            + _install_hint(name)) from exc
    with _instances_lock:
        _instances.setdefault(name, inst)
    return inst


def _install_hint(name: str) -> str:
    if name == "jax":
        return ("Install the CPU wheel with `pip install \"jax[cpu]\"` "
                "(or `pip install -r requirements-ci-jax.txt`), or unset "
                f"{ENV_VAR} to run on the bitwise-exact numpy backend.")
    return f"Check the backend's requirements, or unset {ENV_VAR}."


def _override_stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def active() -> KernelBackend:
    """The backend every kernel call site dispatches through."""
    stack = _override_stack()
    if stack:
        return stack[-1]
    return get_backend(None)


@contextmanager
def _backend_scope(backend: KernelBackend):
    stack = _override_stack()
    stack.append(backend)
    try:
        yield backend
    finally:
        stack.pop()


def use_backend(name: Union[str, KernelBackend]):
    """Context manager: ``with use_backend("jax"): ...`` routes every
    kernel call on this thread through the named backend."""
    return _backend_scope(get_backend(name))
