"""The reference NumPy kernel backend — bitwise-identical to the code it
was extracted from.

Every method here is the pre-backend implementation of its kernel,
moved verbatim (op for op, in the same order) out of
``repro.batched.distances`` / ``repro.batched.spo`` /
``repro.jastrow.functor`` / ``repro.splines.cubic1d`` /
``repro.determinant.dirac`` / ``repro.batched.driver``.  That verbatim
extraction is what lets this backend declare ``exact_match = True``:
``REPRO_BACKEND=numpy`` (and the default) must reproduce current traces
bit for bit, and the restart/differential suites gate exactly that.

Keep it boring.  Any "improvement" to an expression here that changes
its floating-point op sequence is a determinism regression, not a
cleanup (see the bitwise contracts in docs/batched_walkers.md and
docs/parallel_crowds.md).
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend.base import KernelBackend
from repro.distances.base import BIG_DISTANCE

# 1D segment basis (Horner form) and the 3D stencil basis — imported
# from their canonical homes so the numerical constants cannot drift.
from repro.splines.cubic1d import _A as _A1, _dA as _dA1, _d2A as _d2A1
from repro.splines.bspline3d import _A as _A3, _dA as _dA3, _d2A as _d2A3


def _weight_rows3(u: np.ndarray):
    """Batched 3D segment weights: (W,) offsets -> three (W, 4) sets."""
    pu = np.stack([np.ones_like(u), u, u * u, u * u * u], axis=-1)
    return (np.matmul(_A3, pu[:, :, None])[:, :, 0],
            np.matmul(_dA3, pu[:, :, None])[:, :, 0],
            np.matmul(_d2A3, pu[:, :, None])[:, :, 0])


class NumpyBackend(KernelBackend):
    """Bitwise-exact NumPy implementation of every registered kernel."""

    name = "numpy"
    exact_match = True

    # -- distance kernels ----------------------------------------------------------
    def aa_row(self, soa, rk, lattice, self_index=-1):
        nw, _, n = soa.shape
        dr64 = np.empty((nw, 3, n), dtype=np.float64)
        for d in range(3):
            dr64[:, d] = soa[:, d] - rk[:, d, None]
        if lattice.periodic:
            dr64 = lattice.min_image_disp(
                dr64.transpose(0, 2, 1)).transpose(0, 2, 1)
        r2 = dr64[:, 0] * dr64[:, 0] + dr64[:, 1] * dr64[:, 1] \
            + dr64[:, 2] * dr64[:, 2]
        r = np.sqrt(r2)
        if self_index >= 0:
            r[:, self_index] = BIG_DISTANCE
            dr64[:, :, self_index] = 0
        return r, dr64

    def ab_row(self, src_soa, rk, lattice):
        nw = rk.shape[0]
        ns = src_soa.shape[1]
        dr64 = np.empty((nw, 3, ns), dtype=np.float64)
        for d in range(3):
            dr64[:, d] = src_soa[d][None, :] - rk[:, d, None]
        if lattice.periodic:
            dr64 = lattice.min_image_disp(
                dr64.transpose(0, 2, 1)).transpose(0, 2, 1)
        r = np.sqrt(dr64[:, 0] * dr64[:, 0] + dr64[:, 1] * dr64[:, 1]
                    + dr64[:, 2] * dr64[:, 2])
        return r, dr64

    def aa_pairs(self, R, lattice):
        n = R.shape[1]
        dr = R[:, None, :, :] - R[:, :, None, :]  # dr[w, k, i] = r_i - r_k
        if lattice.periodic:
            dr = lattice.min_image_disp(dr)
        dist = np.sqrt(np.sum(np.square(dr), axis=-1))
        idx = np.arange(n)
        dist[:, idx, idx] = BIG_DISTANCE
        disp = np.transpose(dr, (0, 1, 3, 2))
        disp[:, idx, :, idx] = 0
        return dist, disp

    def ab_pairs(self, src_R, R, lattice):
        # dr[w, k, I] = R_I - r_k, matching the per-walker AB convention.
        dr = src_R[None, None, :, :] - R[:, :, None, :]
        if lattice.periodic:
            dr = lattice.min_image_disp(dr)
        dist = np.sqrt(np.sum(np.square(dr), axis=-1))
        return dist, np.transpose(dr, (0, 1, 3, 2))

    # -- Jastrow functor kernels -----------------------------------------------------
    def functor_v(self, coefs, x0, h, nintervals, rcut, r):
        r = np.asarray(r, dtype=np.float64)
        mask = r < rcut
        out = np.zeros_like(r)
        if np.any(mask):
            out[mask] = self.bspline1d_v(coefs, x0, h, nintervals, r[mask])
        return out

    def functor_vgl(self, coefs, x0, h, nintervals, rcut, r):
        r = np.asarray(r, dtype=np.float64)
        mask = r < rcut
        u = np.zeros_like(r)
        du = np.zeros_like(r)
        d2u = np.zeros_like(r)
        if np.any(mask):
            v, dv, d2v = self.bspline1d_vgl(coefs, x0, h, nintervals,
                                            r[mask])
            u[mask] = v
            du[mask] = dv
            d2u[mask] = d2v
        return u, du, d2u

    # -- raw 1D spline kernels (elementwise Horner) ----------------------------------
    def _locate1(self, x0, h, nintervals, r):
        t = (np.asarray(r, dtype=np.float64) - x0) / h
        i = np.clip(np.floor(t).astype(np.int64), 0, nintervals - 1)
        u = t - i
        return i, u

    def bspline1d_v(self, coefs, x0, h, nintervals, r):
        i, u = self._locate1(x0, h, nintervals, r)
        v = np.zeros_like(u)
        for k in range(4):
            row = _A1[k]
            b = row[0] + u * (row[1] + u * (row[2] + u * row[3]))
            v += coefs[i + k] * b
        return v

    def bspline1d_vgl(self, coefs, x0, h, nintervals, r):
        i, u = self._locate1(x0, h, nintervals, r)
        v = np.zeros_like(u)
        dv = np.zeros_like(u)
        d2v = np.zeros_like(u)
        for k in range(4):
            b = _A1[k][0] + u * (_A1[k][1] + u * (_A1[k][2] + u * _A1[k][3]))
            db = _dA1[k][0] + u * (_dA1[k][1] + u * _dA1[k][2])
            d2b = _d2A1[k][0] + u * _d2A1[k][1]
            ck = coefs[i + k]
            v += ck * b
            dv += ck * db
            d2v += ck * d2b
        dv /= h
        d2v /= h * h
        return v, dv, d2v

    # -- 3D B-spline SPO kernels -----------------------------------------------------
    def _locate3(self, cell_inverse, dims, r):
        frac = np.asarray(r, dtype=np.float64) @ cell_inverse
        frac = frac - np.floor(frac)
        dimsf = np.array(dims, dtype=np.float64)
        t = frac * dimsf
        i = np.minimum(t.astype(np.int64), (dimsf - 1).astype(np.int64))
        u = t - i
        return i, u

    def _gather3(self, coefs, i):
        """Gather the W stencil blocks: (W, 4, 4, 4, norb), accumulation
        precision (Sec. 7.2: contraction is double even for fp32
        tables)."""
        o = np.arange(4)
        blocks = coefs[
            i[:, 0, None, None, None] + o[:, None, None],
            i[:, 1, None, None, None] + o[None, :, None],
            i[:, 2, None, None, None] + o[None, None, :],
        ]
        return blocks.astype(np.float64, copy=False)

    def spline3d_v(self, coefs, cell_inverse, dims, r):
        i, u = self._locate3(cell_inverse, dims, r)
        ax, _, _ = _weight_rows3(u[:, 0])
        by, _, _ = _weight_rows3(u[:, 1])
        cz, _, _ = _weight_rows3(u[:, 2])
        blocks = self._gather3(coefs, i)
        return np.einsum("wi,wj,wk,wijkm->wm", ax, by, cz, blocks)

    def spline3d_vgl(self, coefs, cell_inverse, dims, r):
        nw = r.shape[0]
        norb = coefs.shape[-1]
        nx, ny, nz = dims
        i, u = self._locate3(cell_inverse, dims, r)
        wx = _weight_rows3(u[:, 0])
        wy = _weight_rows3(u[:, 1])
        wz = _weight_rows3(u[:, 2])
        blocks = self._gather3(coefs, i)

        def contract(wa, wb, wc):
            return np.einsum("wi,wj,wk,wijkm->wm", wa, wb, wc, blocks)

        a, da, d2a = wx
        b, db, d2b = wy
        c, dc, d2c = wz
        v = contract(a, b, c)
        # Gradient and Hessian in fractional units, then the chain rule.
        gu = np.stack([
            contract(da, b, c) * nx,
            contract(a, db, c) * ny,
            contract(a, b, dc) * nz,
        ], axis=1)  # (W, 3, m)
        hu = np.empty((nw, 3, 3, norb))
        hu[:, 0, 0] = contract(d2a, b, c) * nx * nx
        hu[:, 1, 1] = contract(a, d2b, c) * ny * ny
        hu[:, 2, 2] = contract(a, b, d2c) * nz * nz
        hu[:, 0, 1] = hu[:, 1, 0] = contract(da, db, c) * nx * ny
        hu[:, 0, 2] = hu[:, 2, 0] = contract(da, b, dc) * nx * nz
        hu[:, 1, 2] = hu[:, 2, 1] = contract(a, db, dc) * ny * nz
        g = np.einsum("ab,wbm->wma", cell_inverse, gu)
        lap = np.einsum("ia,wabm,ib->wm", cell_inverse, hu, cell_inverse)
        return v, g, lap

    def spline3d_vgh_tiled(self, coefs, cell_inverse, dims, r, tile):
        """Tile-blocked vgh: one neighborhood walk per orbital tile.

        The ten per-channel contractions of the flat path each stream
        the gathered (W, 4, 4, 4, m) blocks once; here the ten channel
        weight tensors are stacked into one (W, 10, 4, 4, 4) operand and
        a single einsum per tile streams each orbital block exactly
        once.  Per output element the i, j, k summation order and the
        (a*b)*c weight products are identical to the flat path's, so the
        result is bitwise equal to :func:`flat_spline3d_vgh` for every
        tile size (tests/batched/test_tiled_vgh.py pins this).

        The cheap 3x3 frame rotations run once over the full orbital
        axis, not per tile: einsum's inner SIMD grouping depends on the
        width of the last axis, so per-tile rotation would stray by an
        ulp for odd tile widths.  Accumulating the grid-frame gu/hu at
        full width hands the chain-rule einsums byte-identical operands
        to the flat path's.
        """
        nw = r.shape[0]
        norb = coefs.shape[-1]
        nx, ny, nz = dims
        tile = norb if tile is None or int(tile) <= 0 \
            else min(int(tile), norb)
        i, u = self._locate3(cell_inverse, dims, r)
        a, da, d2a = _weight_rows3(u[:, 0])
        b, db, d2b = _weight_rows3(u[:, 1])
        c, dc, d2c = _weight_rows3(u[:, 2])
        blocks = self._gather3(coefs, i)
        # Channel order: v, du_x, du_y, du_z, then the Hessian's upper
        # triangle xx, yy, zz, xy, xz, yz (fractional units; the grid
        # scalings land after the contraction, as in spline3d_vgl).
        wt = np.stack([
            np.einsum("wi,wj,wk->wijk", a, b, c),
            np.einsum("wi,wj,wk->wijk", da, b, c),
            np.einsum("wi,wj,wk->wijk", a, db, c),
            np.einsum("wi,wj,wk->wijk", a, b, dc),
            np.einsum("wi,wj,wk->wijk", d2a, b, c),
            np.einsum("wi,wj,wk->wijk", a, d2b, c),
            np.einsum("wi,wj,wk->wijk", a, b, d2c),
            np.einsum("wi,wj,wk->wijk", da, db, c),
            np.einsum("wi,wj,wk->wijk", da, b, dc),
            np.einsum("wi,wj,wk->wijk", a, db, dc),
        ], axis=1)
        v = np.empty((nw, norb))
        gu = np.empty((nw, 3, norb))
        hu = np.empty((nw, 3, 3, norb))
        for start in range(0, norb, tile):
            stop = min(start + tile, norb)
            out = np.einsum("wcijk,wijkm->wcm", wt, blocks[..., start:stop])
            v[:, start:stop] = out[:, 0]
            gu[:, 0, start:stop] = out[:, 1] * nx
            gu[:, 1, start:stop] = out[:, 2] * ny
            gu[:, 2, start:stop] = out[:, 3] * nz
            s = slice(start, stop)
            hu[:, 0, 0, s] = out[:, 4] * nx * nx
            hu[:, 1, 1, s] = out[:, 5] * ny * ny
            hu[:, 2, 2, s] = out[:, 6] * nz * nz
            hu[:, 0, 1, s] = hu[:, 1, 0, s] = out[:, 7] * nx * ny
            hu[:, 0, 2, s] = hu[:, 2, 0, s] = out[:, 8] * nx * nz
            hu[:, 1, 2, s] = hu[:, 2, 1, s] = out[:, 9] * ny * nz
        g = np.einsum("ab,wbm->wma", cell_inverse, gu)
        h = np.einsum("ia,wabm,jb->wmij", cell_inverse, hu, cell_inverse)
        return v, g, h

    # -- determinant ratio kernels ---------------------------------------------------
    def det_ratio(self, phi, ainv_col):
        return float(phi @ ainv_col)

    def det_ratios_vp(self, phi, ainv_cols):
        return np.einsum("mj,jm->m", phi, ainv_cols)

    # -- fused accept/reject ---------------------------------------------------------
    def exp_rows(self, x):
        """Per-walker libm exp — bitwise-matches the scalar path's
        math.exp (np.exp's SIMD path strays by 1 ulp on a few percent of
        arguments, enough to flip a Metropolis comparison)."""
        out = np.empty_like(x)
        for w in range(x.shape[0]):
            out[w] = math.exp(x[w])
        return out

    def accept_mask(self, rho, log_t, uniforms):
        if log_t is None:
            A = np.minimum(1.0, rho * rho)
        else:
            A = np.minimum(1.0, rho * rho * self.exp_rows(log_t))
        return (uniforms < A) & (rho != 0.0)

    # -- fused sweep pipeline --------------------------------------------------------
    # The reference fused implementation lives in repro.batched.sweep
    # (the op-for-op extraction of the pre-fusion loop body).  The scope
    # push routes the table/functor/exp_rows kernels the pipeline calls
    # internally through *this* backend regardless of the ambient
    # thread-local state.  The import is deferred: repro.batched.sweep
    # is driver-layer code the registry must not pull in at backend
    # construction time.

    def sweep_step(self, plan, k):
        from repro.batched.sweep import fused_sweep_step
        with self.scope():
            return fused_sweep_step(self, plan, k)

    def sweep_run(self, plan):
        from repro.batched.sweep import fused_sweep_run
        with self.scope():
            return fused_sweep_run(self, plan)


def flat_spline3d_vgh(coefs, cell_inverse, dims, r):
    """Flat batched value-grad-Hessian: one einsum per derivative channel.

    The direct extension of :meth:`NumpyBackend.spline3d_vgl` to the full
    Hessian — each of the ten channels streams the gathered blocks once.
    This is the bitwise oracle the tiled kernel is pinned against and the
    ``flat`` leg of the ``spline_memory`` bench.
    """
    be = _REFERENCE
    nw = r.shape[0]
    norb = coefs.shape[-1]
    nx, ny, nz = dims
    i, u = be._locate3(cell_inverse, dims, r)
    a, da, d2a = _weight_rows3(u[:, 0])
    b, db, d2b = _weight_rows3(u[:, 1])
    c, dc, d2c = _weight_rows3(u[:, 2])
    blocks = be._gather3(coefs, i)

    def contract(wa, wb, wc):
        return np.einsum("wi,wj,wk,wijkm->wm", wa, wb, wc, blocks)

    v = contract(a, b, c)
    gu = np.stack([
        contract(da, b, c) * nx,
        contract(a, db, c) * ny,
        contract(a, b, dc) * nz,
    ], axis=1)
    hu = np.empty((nw, 3, 3, norb))
    hu[:, 0, 0] = contract(d2a, b, c) * nx * nx
    hu[:, 1, 1] = contract(a, d2b, c) * ny * ny
    hu[:, 2, 2] = contract(a, b, d2c) * nz * nz
    hu[:, 0, 1] = hu[:, 1, 0] = contract(da, db, c) * nx * ny
    hu[:, 0, 2] = hu[:, 2, 0] = contract(da, b, dc) * nx * nz
    hu[:, 1, 2] = hu[:, 2, 1] = contract(a, db, dc) * ny * nz
    g = np.einsum("ab,wbm->wma", cell_inverse, gu)
    h = np.einsum("ia,wabm,jb->wmij", cell_inverse, hu, cell_inverse)
    return v, g, h


#: stateless helper instance backing :func:`flat_spline3d_vgh`
_REFERENCE = NumpyBackend()
