"""Kernel-backend interface: the hot array math behind one swappable seam.

QMCkl's central argument (arXiv:2512.16677) is that the hot kernels of a
QMC code — distance tables, Jastrow functors, B-spline evaluation,
Sherman-Morrison determinant ratios — should live in a standalone kernel
library behind a stable, array-in/array-out API, so the driver layer
never cares *how* a kernel is executed.  :class:`KernelBackend` is that
seam for this repo: every registered kernel is a pure function of plain
array (plus a read-only ``CrystalLattice``) arguments, returning fresh
arrays, with zero driver or walker state threaded through.

Two contracts every backend implementation must honor:

* **Purity** — kernels never mutate their inputs and never touch global
  state; all bookkeeping (OPS/METRICS records, padded-storage writes,
  precision-policy downcasts) stays at the call site.  Sole sanctioned
  exception: the ``sweep_step``/``sweep_run`` *pipeline kernels*, which
  take a host-side :class:`repro.batched.sweep.SweepPlan` and commit
  accepted moves into its batch/tables — see their docstrings.
* **Boundary types** — call sites coerce results with ``np.asarray`` /
  ``float``, so a backend may return its own array type (e.g. a JAX
  ``DeviceArray``); inputs arrive as NumPy arrays.

A backend additionally declares ``exact_match``: ``True`` means its
kernels are bitwise-identical to the reference NumPy extraction (the
differential suites may gate it with exact accept/reject-sequence and
trace equality); ``False`` means it is gated by the tolerance-bounded
suites plus the per-kernel gates in ``tests/backend/`` (see
docs/backends.md for the parity-gating policy).
"""

from __future__ import annotations


class BackendUnavailableError(ImportError):
    """A requested kernel backend cannot be constructed on this host.

    Raised with an actionable message (what to install, or which names
    are available) so ``REPRO_BACKEND=jax`` on a jax-less host fails
    loudly instead of silently falling back.
    """


#: Registered kernel names — the complete hot-kernel surface a backend
#: must implement.  tests/backend/test_properties.py iterates this tuple
#: and fails if a kernel is added here without a matching input factory,
#: so the list cannot silently drift from the test coverage.
KERNEL_NAMES = (
    # DistTable AA/AB forward-update rows, OTF row recompute, and
    # from-scratch evaluation
    "aa_row",
    "ab_row",
    "aa_pairs",
    "ab_pairs",
    # J1/J2 cutoff B-spline functor evaluation (elementwise Horner)
    "functor_v",
    "functor_vgl",
    # raw 1D cubic B-spline value / value-grad-lap (elementwise Horner)
    "bspline1d_v",
    "bspline1d_vgl",
    # batched 3D B-spline SPO value / value-grad-lap (stencil contraction)
    "spline3d_v",
    "spline3d_vgl",
    # tile-blocked batched value-grad-hessian (one neighborhood walk for
    # all ten derivative channels, orbital axis processed in tiles)
    "spline3d_vgh_tiled",
    # DiracDeterminant ratio-only Sherman-Morrison row kernels
    "det_ratio",
    "det_ratios_vp",
    # fused Metropolis accept/reject step of BatchedCrowdDriver
    "exp_rows",
    "accept_mask",
    # fused whole-move / whole-sweep pipeline kernels (the one sanctioned
    # departure from the pure array-in/array-out contract; see the
    # KernelBackend docstrings)
    "sweep_step",
    "sweep_run",
)


class KernelBackend:
    """Abstract kernel backend; subclasses implement every name in
    :data:`KERNEL_NAMES` as a pure array-in/array-out method.

    Shapes below use W = walkers, n = particles of the table, ns = fixed
    sources (ions), m = orbitals, Nvp = virtual-particle slab length.
    """

    #: registry name ("numpy", "jax", ...)
    name = "abstract"
    #: bitwise-identical to the reference NumPy kernels?
    exact_match = False

    # -- activation ----------------------------------------------------------------
    def scope(self):
        """Context manager making this backend the thread-local active
        backend for the duration (the per-driver override mechanism)."""
        from repro.backend.registry import _backend_scope
        return _backend_scope(self)

    # -- distance kernels ----------------------------------------------------------
    def aa_row(self, soa, rk, lattice, self_index=-1):
        """Distances/displacements from each walker's center ``rk[w]``
        to that walker's own particles.

        ``soa`` is (W, 3, n), ``rk`` (W, 3); returns ``(r, dr)`` of
        shapes (W, n) and (W, 3, n) in accumulation precision, with row
        ``self_index`` masked to (BIG_DISTANCE, 0) when >= 0.
        """
        raise NotImplementedError

    def ab_row(self, src_soa, rk, lattice):
        """Distances/displacements from each walker's center ``rk[w]``
        to the shared fixed sources ``src_soa`` (3, ns); returns
        ``(r, dr)`` of shapes (W, ns) and (W, 3, ns)."""
        raise NotImplementedError

    def aa_pairs(self, R, lattice):
        """All-pairs AA table from canonical positions ``R`` (W, n, 3);
        returns ``(dist, disp)`` of shapes (W, n, n) and (W, n, 3, n)
        with the self diagonal masked to (BIG_DISTANCE, 0)."""
        raise NotImplementedError

    def ab_pairs(self, src_R, R, lattice):
        """All-pairs AB table: sources ``src_R`` (ns, 3) vs ``R``
        (W, nt, 3); returns ``(dist, disp)`` of shapes (W, nt, ns) and
        (W, nt, 3, ns)."""
        raise NotImplementedError

    # -- Jastrow functor kernels -----------------------------------------------------
    def functor_v(self, coefs, x0, h, nintervals, rcut, r):
        """Cutoff 1D B-spline functor value u(r): zero at/beyond
        ``rcut``, elementwise Horner inside.  ``r`` is any shape; the
        result matches it."""
        raise NotImplementedError

    def functor_vgl(self, coefs, x0, h, nintervals, rcut, r):
        """(u, du/dr, d2u/dr2) of the cutoff functor, each zero at or
        beyond ``rcut``."""
        raise NotImplementedError

    # -- raw 1D spline kernels -------------------------------------------------------
    def bspline1d_v(self, coefs, x0, h, nintervals, r):
        """Uncut 1D cubic B-spline values at ``r`` (1-D array)."""
        raise NotImplementedError

    def bspline1d_vgl(self, coefs, x0, h, nintervals, r):
        """(value, d/dr, d2/dr2) of the uncut 1D spline at ``r``."""
        raise NotImplementedError

    # -- 3D B-spline SPO kernels -----------------------------------------------------
    def spline3d_v(self, coefs, cell_inverse, dims, r):
        """All-orbital values at W points: ``coefs`` is the padded
        (nx+3, ny+3, nz+3, m) table, ``dims`` = (nx, ny, nz), ``r``
        (W, 3) Cartesian; returns (W, m) in accumulation precision."""
        raise NotImplementedError

    def spline3d_vgl(self, coefs, cell_inverse, dims, r):
        """(v (W, m), g (W, m, 3), lap (W, m)) at W Cartesian points."""
        raise NotImplementedError

    def spline3d_vgh_tiled(self, coefs, cell_inverse, dims, r, tile):
        """Tile-blocked value-grad-Hessian: (v (W, m), g (W, m, 3),
        h (W, m, 3, 3)) at W Cartesian points.

        The ten stencil contractions (value, three gradient channels,
        six Hessian channels) walk each walker's 4x4x4 neighborhood
        *once* per tile of ``tile`` orbitals instead of once per
        channel.  Exact backends must keep the result bitwise equal to
        the flat per-channel path
        (:func:`repro.backend.numpy_backend.flat_spline3d_vgh`) for
        every tile size, including ``tile >= m``.
        """
        raise NotImplementedError

    # -- determinant ratio kernels ---------------------------------------------------
    def det_ratio(self, phi, ainv_col):
        """Sherman-Morrison row ratio phi . A^-1[:, i] — a scalar."""
        raise NotImplementedError

    def det_ratios_vp(self, phi, ainv_cols):
        """Slab of row ratios: ``phi`` (Nvp, nel) against the gathered
        columns ``ainv_cols`` (nel, Nvp); returns (Nvp,)."""
        raise NotImplementedError

    # -- fused accept/reject ---------------------------------------------------------
    def exp_rows(self, x):
        """Per-walker exp of a (W,) vector.  Exact backends must match
        the scalar path's libm ``math.exp`` bitwise (np.exp's SIMD path
        strays by 1 ulp — enough to flip a Metropolis comparison)."""
        raise NotImplementedError

    def accept_mask(self, rho, log_t, uniforms):
        """Fused Metropolis decision for the whole crowd.

        ``A = min(1, rho^2 * exp(log_t))`` (``log_t is None`` for the
        no-drift walk), accepted where ``uniforms < A`` and ``rho != 0``;
        returns the (W,) boolean mask.
        """
        raise NotImplementedError

    # -- fused sweep pipeline --------------------------------------------------------
    # ``sweep_step``/``sweep_run`` are *pipeline kernels* — the one
    # sanctioned exception to the purity contract above.  They take a
    # host-side :class:`repro.batched.sweep.SweepPlan` instead of plain
    # arrays and COMMIT accepted moves into its batch and tables; that
    # mutation is the pipeline's entire point (one backend call replaces
    # the ~14 per-electron kernel dispatches the driver used to issue).
    # Everything else still holds: no global state, all randoms are
    # drawn host-side into the plan's workspace before the call, and
    # exact backends must keep the accept/reject sequence bitwise equal
    # to the reference loop (``BatchedCrowdDriver._loop_sweep``).

    def sweep_step(self, plan, k):
        """One whole Metropolis move of electron ``k`` across the crowd:
        propose -> table move -> ratio/ratio_grad product -> drift limit
        -> log T -> accept_mask -> commit.  Consumes ``plan.workspace``'s
        pre-drawn ``chi_all[:, k]`` / ``uniforms[:, k]``, mutates the
        plan's batch/tables, and returns the (W,) boolean accept mask.
        """
        raise NotImplementedError

    def sweep_run(self, plan):
        """One whole particle-by-particle sweep (all ``plan.n``
        electrons).  Backends that can fuse the electron loop itself
        (e.g. a jitted ``lax.fori_loop``) pay dispatch once per sweep
        here; others loop over :meth:`sweep_step`.  Returns
        ``(accepts_per_walker, accepted_total)`` — a fresh (W,) int64
        array and a Python int.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} " \
               f"exact_match={self.exact_match}>"
