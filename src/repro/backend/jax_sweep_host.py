"""Host side of the jax whole-sweep pipeline (docs/sweep_fusion.md).

``jax_backend`` is a ``# repro: backend-pure`` module: everything in it
must stay inside ``jnp`` so kernel bodies remain jit/vmap-traceable
(rule R011).  The whole-sweep entry point, however, has two halves that
are host code *by design* and therefore live here instead:

* **payload staging** — flattening a plan's Jastrow functors, lattice
  and group indices into padded device arrays, once per plan; and
* **writeback** — after ``_sweep_all`` returns, committing the final
  positions into the walker batch, refreshing the SoA mirror and
  distance tables, and extending the move log / running sanitizers.

Both touch driver-layer objects and NumPy storage, never the inside of
a trace, so host-NumPy use here is correct rather than an R011 bug.
"""

from __future__ import annotations

import numpy as np


def functor_bank(functors):
    """Stack a list of BsplineFunctors into padded device arrays:
    (coefs (nf, Lmax), x0, h, nintervals, rcut) — the traced half of
    the sweep payload."""
    import jax.numpy as jnp
    lmax = max(f.spline.coefs.shape[0] for f in functors)
    coefs = np.zeros((len(functors), lmax))
    for i, f in enumerate(functors):
        coefs[i, :f.spline.coefs.shape[0]] = f.spline.coefs
    return (jnp.asarray(coefs),
            jnp.asarray(np.array([f.spline.x0 for f in functors])),
            jnp.asarray(np.array([f.spline.h for f in functors])),
            jnp.asarray(np.array([f.spline.n for f in functors],
                                 dtype=np.int64)),
            jnp.asarray(np.array([f.rcut for f in functors])))


def build_sweep_payload(plan):
    """Device-side constants of a plan's J2+J1 wavefunction, or None if
    the component set is not the [J2, J1] shape the whole-sweep jit
    understands (the caller then falls back to per-step dispatch)."""
    import jax.numpy as jnp

    from repro.backend.jax_backend import _lat_args

    j2 = j1 = None
    for c in plan.components:
        if hasattr(c, "group_slices"):
            j2 = c
        elif hasattr(c, "ion_species_ids"):
            j1 = c
        else:
            return None
    if j2 is None or j1 is None:
        return None
    # J2: unique functor objects + a (ngroups, ngroups) index matrix.
    funs2 = []
    index2 = {}
    ng = max(max(gi, gj) for gi, gj in j2.functors) + 1
    fmat = np.zeros((ng, ng), dtype=np.int64)
    for (gi, gj), f in j2.functors.items():
        if id(f) not in index2:
            index2[id(f)] = len(funs2)
            funs2.append(f)
        fmat[gi, gj] = fmat[gj, gi] = index2[id(f)]
    c2, x02, h2, ni2, rc2 = functor_bank(funs2)
    # J1: one functor per ion species, indexed per ion.
    species = sorted(j1.functors)
    funs1 = [j1.functors[g] for g in species]
    sp_index = {g: i for i, g in enumerate(species)}
    f1idx = np.array([sp_index[int(g)] for g in j1.ion_species_ids],
                     dtype=np.int64)
    c1, x01, h1, ni1, rc1 = functor_bank(funs1)
    src = np.ascontiguousarray(plan.tables[j1.table_index]._src_soa.T)
    inverse, axes, shifts, periodic, ortho = _lat_args(
        plan.tables[j2.table_index].lattice)
    return {
        "traced": (jnp.asarray(j2.group_of), jnp.asarray(fmat),
                   c2, x02, h2, ni2, rc2,
                   jnp.asarray(src), jnp.asarray(f1idx),
                   c1, x01, h1, ni1, rc1,
                   inverse, axes, shifts),
        "periodic": periodic,
        "orthogonal": ortho,
    }


def finalize_sweep(backend, plan, R, counts, hist):
    """One host resync per sweep: commit the device positions into the
    canonical batch storage and SoA mirror, refresh the distance tables
    from scratch under ``backend``'s scope, extend the move log from
    the per-electron accept history, and run the sanitizers.  Returns
    the driver-facing ``(accepts_per_walker, accepted_total)``."""
    batch = plan.batch
    batch.R[...] = np.asarray(R)
    batch.sync_soa()
    with backend.scope():
        for t in plan.tables:
            t.evaluate(batch)
    if plan.move_log is not None:
        hist_np = np.asarray(hist)
        for k in range(plan.n):
            plan.move_log.append(hist_np[k].copy())
    if plan.sanitizers is not None:
        with backend.scope():
            plan.sanitizers.check_state(batch, plan.tables)
    accepts = np.asarray(counts, dtype=np.int64)
    return accepts, int(accepts.sum())
