"""JAX kernel backend: ``jit`` + ``vmap`` over the walker axis.

Importing this module requires jax; the registry only imports it when
``REPRO_BACKEND=jax`` (or an explicit ``get_backend("jax")``) asks for
it, and converts the ImportError into a
:class:`~repro.backend.base.BackendUnavailableError` with install
instructions.  A jax-less host never pays for this file.

Numerics policy (docs/backends.md): ``jax_enable_x64`` is switched on at
import so every kernel accumulates in float64, matching the reference
backend's accumulation precision.  The backend still declares
``exact_match = False`` — XLA is free to fuse multiply-adds and reorder
contractions, and ``jnp.exp`` is not guaranteed bitwise against libm's
``math.exp``, so ulp-level divergence (which can flip an individual
Metropolis comparison) is expected.  Parity is therefore gated by the
tolerance-bounded differential suites plus the per-kernel gates in
tests/backend/, not by the exact trace-equality tests.

Each kernel is a module-level function over plain arrays, jitted once
with the structural knobs (periodicity, orthogonality, self-row index)
as static arguments; the distance and SPO kernels are written
per-walker/per-point and lifted over the batch axis with ``vmap``.
Lattice geometry is splatted into (inverse, axes, shifts) arrays before
entering jit — a ``CrystalLattice`` object never crosses the trace
boundary.
"""

# repro: backend-pure

from __future__ import annotations

from functools import partial

import jax

jax.config.update("jax_enable_x64", True)

import jax.numpy as jnp  # noqa: E402

from repro.backend.base import KernelBackend  # noqa: E402
from repro.distances.base import BIG_DISTANCE  # noqa: E402
from repro.splines.cubic1d import (  # noqa: E402
    _A as _A1, _dA as _dA1, _d2A as _d2A1)
from repro.splines.bspline3d import (  # noqa: E402
    _A as _A3, _dA as _dA3, _d2A as _d2A3)

#: stand-in shift table for cells that never take the skewed branch
#: (orthogonal=True makes it dead code, but jit still wants an array).
_NO_SHIFTS = jnp.zeros((1, 3))
_EYE3 = jnp.eye(3)


def _lat_args(lattice):
    """Splat a CrystalLattice into jit-safe (traced..., static...) args."""
    if not lattice.periodic:
        return _EYE3, _EYE3, _NO_SHIFTS, False, True
    shifts = (_NO_SHIFTS if lattice._image_shifts is None
              else jnp.asarray(lattice._image_shifts))
    return (jnp.asarray(lattice.inverse), jnp.asarray(lattice.axes),
            shifts, True, lattice.orthogonal)


def _min_image(dr, inverse, axes, shifts, orthogonal):
    """Minimum image over (..., 3) displacements (traced branch-free)."""
    s = dr @ inverse
    s = s - jnp.round(s)
    d0 = s @ axes
    if orthogonal:
        return d0
    cand = d0[..., None, :] + shifts
    d2 = jnp.sum(cand * cand, axis=-1)
    idx = jnp.argmin(d2, axis=-1)
    return jnp.take_along_axis(cand, idx[..., None, None], axis=-2)[..., 0, :]


# -- distance kernels ------------------------------------------------------------
def _row1(soa_w, rk_w, inverse, axes, shifts, periodic, orthogonal):
    """One walker's row: (3, n) SoA vs its (3,) center -> (n,), (3, n)."""
    dr = soa_w.astype(jnp.float64) - rk_w.astype(jnp.float64)[:, None]
    if periodic:
        dr = _min_image(dr.T, inverse, axes, shifts, orthogonal).T
    r = jnp.sqrt(dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2])
    return r, dr


@partial(jax.jit, static_argnames=("periodic", "orthogonal", "self_index"))
def _aa_row(soa, rk, inverse, axes, shifts, periodic, orthogonal, self_index):
    r, dr = jax.vmap(_row1, in_axes=(0, 0, None, None, None, None, None))(
        soa, rk, inverse, axes, shifts, periodic, orthogonal)
    if self_index >= 0:
        r = r.at[:, self_index].set(BIG_DISTANCE)
        dr = dr.at[:, :, self_index].set(0.0)
    return r, dr


@partial(jax.jit, static_argnames=("periodic", "orthogonal"))
def _ab_row(src_soa, rk, inverse, axes, shifts, periodic, orthogonal):
    return jax.vmap(_row1, in_axes=(None, 0, None, None, None, None, None))(
        src_soa, rk, inverse, axes, shifts, periodic, orthogonal)


def _pairs_aa1(R_w, inverse, axes, shifts, periodic, orthogonal):
    n = R_w.shape[0]
    dr = R_w[None, :, :] - R_w[:, None, :]  # dr[k, i] = r_i - r_k
    if periodic:
        dr = _min_image(dr, inverse, axes, shifts, orthogonal)
    dist = jnp.sqrt(jnp.sum(dr * dr, axis=-1))
    idx = jnp.arange(n)
    dist = dist.at[idx, idx].set(BIG_DISTANCE)
    disp = jnp.transpose(dr, (0, 2, 1))
    disp = disp.at[idx, :, idx].set(0.0)
    return dist, disp


@partial(jax.jit, static_argnames=("periodic", "orthogonal"))
def _aa_pairs(R, inverse, axes, shifts, periodic, orthogonal):
    return jax.vmap(_pairs_aa1, in_axes=(0, None, None, None, None, None))(
        R.astype(jnp.float64), inverse, axes, shifts, periodic, orthogonal)


def _pairs_ab1(src_R, R_w, inverse, axes, shifts, periodic, orthogonal):
    dr = src_R[None, :, :] - R_w[:, None, :]  # dr[k, I] = R_I - r_k
    if periodic:
        dr = _min_image(dr, inverse, axes, shifts, orthogonal)
    dist = jnp.sqrt(jnp.sum(dr * dr, axis=-1))
    return dist, jnp.transpose(dr, (0, 2, 1))


@partial(jax.jit, static_argnames=("periodic", "orthogonal"))
def _ab_pairs(src_R, R, inverse, axes, shifts, periodic, orthogonal):
    return jax.vmap(_pairs_ab1,
                    in_axes=(None, 0, None, None, None, None, None))(
        src_R, R.astype(jnp.float64), inverse, axes, shifts, periodic,
        orthogonal)


# -- 1D spline kernels -----------------------------------------------------------
def _locate1(x0, h, nintervals, r):
    t = (r - x0) / h
    i = jnp.clip(jnp.floor(t).astype(jnp.int64), 0, nintervals - 1)
    return i, t - i


@partial(jax.jit, static_argnames=("nintervals",))
def _bspline1d_v(coefs, x0, h, nintervals, r):
    i, u = _locate1(x0, h, nintervals, r.astype(jnp.float64))
    v = jnp.zeros_like(u)
    for k in range(4):
        row = _A1[k]
        b = row[0] + u * (row[1] + u * (row[2] + u * row[3]))
        v = v + coefs[i + k] * b
    return v


@partial(jax.jit, static_argnames=("nintervals",))
def _bspline1d_vgl(coefs, x0, h, nintervals, r):
    i, u = _locate1(x0, h, nintervals, r.astype(jnp.float64))
    v = jnp.zeros_like(u)
    dv = jnp.zeros_like(u)
    d2v = jnp.zeros_like(u)
    for k in range(4):
        b = _A1[k][0] + u * (_A1[k][1] + u * (_A1[k][2] + u * _A1[k][3]))
        db = _dA1[k][0] + u * (_dA1[k][1] + u * _dA1[k][2])
        d2b = _d2A1[k][0] + u * _d2A1[k][1]
        ck = coefs[i + k]
        v = v + ck * b
        dv = dv + ck * db
        d2v = d2v + ck * d2b
    return v, dv / h, d2v / (h * h)


@partial(jax.jit, static_argnames=("nintervals",))
def _functor_v(coefs, x0, h, nintervals, rcut, r):
    r = r.astype(jnp.float64)
    mask = r < rcut
    # Pre-mask to 0 before Horner: masked-out rows go up to BIG_DISTANCE
    # and would overflow the polynomial into inf before jnp.where runs.
    rs = jnp.where(mask, r, 0.0)
    return jnp.where(mask, _bspline1d_v(coefs, x0, h, nintervals, rs), 0.0)


@partial(jax.jit, static_argnames=("nintervals",))
def _functor_vgl(coefs, x0, h, nintervals, rcut, r):
    r = r.astype(jnp.float64)
    mask = r < rcut
    rs = jnp.where(mask, r, 0.0)
    v, dv, d2v = _bspline1d_vgl(coefs, x0, h, nintervals, rs)
    zero = jnp.zeros_like(r)
    return (jnp.where(mask, v, zero), jnp.where(mask, dv, zero),
            jnp.where(mask, d2v, zero))


# -- 3D B-spline SPO kernels -----------------------------------------------------
def _weights3(u):
    """Scalar offset -> (value, d, d2) segment-weight rows, (4,) each."""
    pu = jnp.stack([jnp.ones_like(u), u, u * u, u * u * u])
    return _A3 @ pu, _dA3 @ pu, _d2A3 @ pu


def _locate3(cell_inverse, dims, r_w):
    frac = r_w @ cell_inverse
    frac = frac - jnp.floor(frac)
    dimsf = jnp.asarray(dims, dtype=jnp.float64)
    t = frac * dimsf
    i = jnp.minimum(t.astype(jnp.int64), dimsf.astype(jnp.int64) - 1)
    return i, t - i


def _gather3(coefs, i, norb):
    return jax.lax.dynamic_slice(
        coefs, (i[0], i[1], i[2], 0), (4, 4, 4, norb)).astype(jnp.float64)


def _spline3d_v1(coefs, cell_inverse, dims, r_w):
    i, u = _locate3(cell_inverse, dims, r_w)
    a, _, _ = _weights3(u[0])
    b, _, _ = _weights3(u[1])
    c, _, _ = _weights3(u[2])
    blocks = _gather3(coefs, i, coefs.shape[-1])
    return jnp.einsum("i,j,k,ijkm->m", a, b, c, blocks)


@partial(jax.jit, static_argnames=("dims",))
def _spline3d_v(coefs, cell_inverse, dims, r):
    return jax.vmap(_spline3d_v1, in_axes=(None, None, None, 0))(
        coefs, cell_inverse, dims, r.astype(jnp.float64))


def _spline3d_vgl1(coefs, cell_inverse, dims, r_w):
    nx, ny, nz = dims
    i, u = _locate3(cell_inverse, dims, r_w)
    a, da, d2a = _weights3(u[0])
    b, db, d2b = _weights3(u[1])
    c, dc, d2c = _weights3(u[2])
    blocks = _gather3(coefs, i, coefs.shape[-1])

    def contract(wa, wb, wc):
        return jnp.einsum("i,j,k,ijkm->m", wa, wb, wc, blocks)

    v = contract(a, b, c)
    gu = jnp.stack([
        contract(da, b, c) * nx,
        contract(a, db, c) * ny,
        contract(a, b, dc) * nz,
    ])  # (3, m), fractional units
    huxy = contract(da, db, c) * (nx * ny)
    huxz = contract(da, b, dc) * (nx * nz)
    huyz = contract(a, db, dc) * (ny * nz)
    hu = jnp.stack([
        jnp.stack([contract(d2a, b, c) * (nx * nx), huxy, huxz]),
        jnp.stack([huxy, contract(a, d2b, c) * (ny * ny), huyz]),
        jnp.stack([huxz, huyz, contract(a, b, d2c) * (nz * nz)]),
    ])  # (3, 3, m)
    g = jnp.einsum("ab,bm->ma", cell_inverse, gu)
    lap = jnp.einsum("ia,abm,ib->m", cell_inverse, hu, cell_inverse)
    return v, g, lap


@partial(jax.jit, static_argnames=("dims",))
def _spline3d_vgl(coefs, cell_inverse, dims, r):
    return jax.vmap(_spline3d_vgl1, in_axes=(None, None, None, 0))(
        coefs, cell_inverse, dims, r.astype(jnp.float64))


def _spline3d_vgh1(coefs, cell_inverse, dims, r_w):
    nx, ny, nz = dims
    i, u = _locate3(cell_inverse, dims, r_w)
    a, da, d2a = _weights3(u[0])
    b, db, d2b = _weights3(u[1])
    c, dc, d2c = _weights3(u[2])
    blocks = _gather3(coefs, i, coefs.shape[-1])

    def contract(wa, wb, wc):
        return jnp.einsum("i,j,k,ijkm->m", wa, wb, wc, blocks)

    v = contract(a, b, c)
    gu = jnp.stack([
        contract(da, b, c) * nx,
        contract(a, db, c) * ny,
        contract(a, b, dc) * nz,
    ])  # (3, m), fractional units
    huxy = contract(da, db, c) * (nx * ny)
    huxz = contract(da, b, dc) * (nx * nz)
    huyz = contract(a, db, dc) * (ny * nz)
    hu = jnp.stack([
        jnp.stack([contract(d2a, b, c) * (nx * nx), huxy, huxz]),
        jnp.stack([huxy, contract(a, d2b, c) * (ny * ny), huyz]),
        jnp.stack([huxz, huyz, contract(a, b, d2c) * (nz * nz)]),
    ])  # (3, 3, m)
    g = jnp.einsum("ab,bm->ma", cell_inverse, gu)
    h = jnp.einsum("ia,abm,jb->mij", cell_inverse, hu, cell_inverse)
    return v, g, h


@partial(jax.jit, static_argnames=("dims", "tile"))
def _spline3d_vgh_tiled(coefs, cell_inverse, dims, r, tile):
    # ``tile`` is accepted for signature parity with the numpy kernel
    # but deliberately unused: XLA already fuses the ten channel
    # contractions into one pass over the gathered blocks, which is the
    # very blocking the numpy tile loop reconstructs by hand.
    del tile
    return jax.vmap(_spline3d_vgh1, in_axes=(None, None, None, 0))(
        coefs, cell_inverse, dims, r.astype(jnp.float64))


# -- determinant / accept kernels ------------------------------------------------
@jax.jit
def _det_ratio(phi, ainv_col):
    return jnp.dot(phi.astype(jnp.float64), ainv_col.astype(jnp.float64))


@jax.jit
def _det_ratios_vp(phi, ainv_cols):
    return jnp.einsum("mj,jm->m", phi.astype(jnp.float64),
                      ainv_cols.astype(jnp.float64))


@partial(jax.jit, static_argnames=("drift",))
def _accept_mask(rho, log_t, uniforms, drift):
    if drift:
        A = jnp.minimum(1.0, rho * rho * jnp.exp(log_t))
    else:
        A = jnp.minimum(1.0, rho * rho)
    return (uniforms < A) & (rho != 0.0)


# -- fused whole-sweep pipeline ---------------------------------------------------
def _cols_vgl(r, fidx, coefs, x0s, hs, nints, rcuts):
    """Cutoff-functor (u, du, d2u) over (W, cols) distances where column
    ``j`` uses functor ``fidx[j]`` (coefs padded to a common length).

    The per-column grid scalars broadcast against the walker axis; the
    pre-mask-to-0 trick is the same as :func:`_functor_v` (masked
    columns sit at BIG_DISTANCE and would overflow the Horner form).
    """
    x0 = x0s[fidx]
    h = hs[fidx]
    nint = nints[fidx]
    rcut = rcuts[fidx]
    mask = r < rcut
    rs = jnp.where(mask, r, 0.0)
    t = (rs - x0) / h
    i = jnp.clip(jnp.floor(t).astype(jnp.int64), 0, nint - 1)
    u = t - i
    v = jnp.zeros_like(u)
    dv = jnp.zeros_like(u)
    d2v = jnp.zeros_like(u)
    for k in range(4):
        b = _A1[k][0] + u * (_A1[k][1] + u * (_A1[k][2] + u * _A1[k][3]))
        db = _dA1[k][0] + u * (_dA1[k][1] + u * _dA1[k][2])
        d2b = _d2A1[k][0] + u * _d2A1[k][1]
        ck = coefs[fidx, i + k]
        v = v + ck * b
        dv = dv + ck * db
        d2v = d2v + ck * d2b
    zero = jnp.zeros_like(u)
    return (jnp.where(mask, v, zero), jnp.where(mask, dv / h, zero),
            jnp.where(mask, d2v / (h * h), zero))


def _ee_row(R, rk, k, inverse, axes, shifts, periodic, orthogonal):
    """Electron-electron row of electron ``k``: (W, n) distances and
    (W, n, 3) displacements r_j - r_k, self entry masked to (BIG, 0)."""
    dr = R - rk[:, None, :]
    if periodic:
        dr = _min_image(dr, inverse, axes, shifts, orthogonal)
    r = jnp.sqrt(jnp.sum(dr * dr, axis=-1))
    r = r.at[:, k].set(BIG_DISTANCE)
    dr = dr.at[:, k].set(0.0)
    return r, dr


def _ei_row(src, rk, inverse, axes, shifts, periodic, orthogonal):
    """Electron-ion row: (W, nion) distances and (W, nion, 3)
    displacements R_I - r_k against the shared fixed ions."""
    dr = src[None, :, :] - rk[:, None, :]
    if periodic:
        dr = _min_image(dr, inverse, axes, shifts, orthogonal)
    return jnp.sqrt(jnp.sum(dr * dr, axis=-1)), dr


def _limited_drift_jax(tau, cap_units, g):
    """Branch-free norm-capped drift (the loop path's data-dependent
    branch becomes a where)."""
    drift = tau * g
    norm = jnp.sqrt(jnp.sum(drift * drift, axis=-1))
    cap = cap_units * jnp.sqrt(tau)
    scale = jnp.where(norm > cap, cap / jnp.maximum(norm, 1e-300), 1.0)
    return drift * scale[:, None]


@partial(jax.jit,
         static_argnames=("use_drift", "periodic", "orthogonal"))
def _sweep_all(R, chi_all, uniforms, tau, cap_units,
               g2_of, f2mat, c2, x02, h2, ni2, rc2,
               src, f1idx, c1, x01, h1, ni1, rc1,
               inverse, axes, shifts, use_drift, periodic, orthogonal):
    """The whole PbyP sweep as ONE jitted computation.

    ``lax.fori_loop`` carries (positions, per-walker accept counts,
    per-move accept history) across the n electron moves, so host
    dispatch is paid once per sweep instead of ~14x per electron.  Rows
    are recomputed on the fly from the carried positions — equivalent
    (to tolerance) to the host tables' incrementally updated storage.
    """
    nw, n, _ = R.shape

    def j2_eval(r, dr, k):
        fidx = f2mat[g2_of[k], g2_of]
        u, du, _ = _cols_vgl(r, fidx, c2, x02, h2, ni2, rc2)
        usum = jnp.sum(u, axis=-1)
        grad = jnp.einsum("wj,wjd->wd", du / r, dr)
        return usum, grad

    def j1_eval(r, dr):
        u, du, _ = _cols_vgl(r, f1idx, c1, x01, h1, ni1, rc1)
        usum = jnp.sum(u, axis=-1)
        grad = jnp.einsum("wj,wjd->wd", du / r, dr)
        return usum, grad

    def body(k, carry):
        R, counts, hist = carry
        rk = R[:, k]
        chi = chi_all[:, k]
        r2o, dr2o = _ee_row(R, rk, k, inverse, axes, shifts, periodic,
                            orthogonal)
        r1o, dr1o = _ei_row(src, rk, inverse, axes, shifts, periodic,
                            orthogonal)
        u2o, g2o = j2_eval(r2o, dr2o, k)
        u1o, g1o = j1_eval(r1o, dr1o)
        if use_drift:
            drift_old = _limited_drift_jax(tau, cap_units, g2o + g1o)
            rnew = rk + drift_old + chi
        else:
            rnew = rk + chi
        r2n, dr2n = _ee_row(R, rnew, k, inverse, axes, shifts, periodic,
                            orthogonal)
        r1n, dr1n = _ei_row(src, rnew, inverse, axes, shifts, periodic,
                            orthogonal)
        u2n, g2n = j2_eval(r2n, dr2n, k)
        u1n, g1n = j1_eval(r1n, dr1n)
        rho = jnp.exp(-(u2n - u2o)) * jnp.exp(-(u1n - u1o))
        if use_drift:
            drift_new = _limited_drift_jax(tau, cap_units, g2n + g1n)
            back = rk - rnew - drift_new
            fwd = rnew - rk - drift_old
            log_t = (-jnp.sum(back * back, axis=-1)
                     + jnp.sum(fwd * fwd, axis=-1)) / (2.0 * tau)
            A = jnp.minimum(1.0, rho * rho * jnp.exp(log_t))
        else:
            A = jnp.minimum(1.0, rho * rho)
        acc = (uniforms[:, k] < A) & (rho != 0.0)
        R = R.at[:, k].set(jnp.where(acc[:, None], rnew, rk))
        counts = counts + acc.astype(jnp.int64)
        hist = hist.at[k].set(acc)
        return R, counts, hist

    counts0 = jnp.zeros(nw, dtype=jnp.int64)
    hist0 = jnp.zeros((n, nw), dtype=bool)
    return jax.lax.fori_loop(0, n, body, (R, counts0, hist0))


class JaxBackend(KernelBackend):
    """jit+vmap kernels; float64 accumulation, tolerance-gated parity."""

    name = "jax"
    exact_match = False

    def aa_row(self, soa, rk, lattice, self_index=-1):
        inverse, axes, shifts, periodic, ortho = _lat_args(lattice)
        return _aa_row(soa, rk, inverse, axes, shifts, periodic, ortho,
                       int(self_index))

    def ab_row(self, src_soa, rk, lattice):
        inverse, axes, shifts, periodic, ortho = _lat_args(lattice)
        return _ab_row(src_soa, rk, inverse, axes, shifts, periodic, ortho)

    def aa_pairs(self, R, lattice):
        inverse, axes, shifts, periodic, ortho = _lat_args(lattice)
        return _aa_pairs(R, inverse, axes, shifts, periodic, ortho)

    def ab_pairs(self, src_R, R, lattice):
        inverse, axes, shifts, periodic, ortho = _lat_args(lattice)
        return _ab_pairs(src_R, R, inverse, axes, shifts, periodic, ortho)

    def functor_v(self, coefs, x0, h, nintervals, rcut, r):
        return _functor_v(coefs, float(x0), float(h), int(nintervals),
                          float(rcut), jnp.atleast_1d(jnp.asarray(r))
                          ).reshape(jnp.shape(r))

    def functor_vgl(self, coefs, x0, h, nintervals, rcut, r):
        shape = jnp.shape(r)
        u, du, d2u = _functor_vgl(coefs, float(x0), float(h),
                                  int(nintervals), float(rcut),
                                  jnp.atleast_1d(jnp.asarray(r)))
        return u.reshape(shape), du.reshape(shape), d2u.reshape(shape)

    def bspline1d_v(self, coefs, x0, h, nintervals, r):
        return _bspline1d_v(coefs, float(x0), float(h), int(nintervals),
                            jnp.asarray(r))

    def bspline1d_vgl(self, coefs, x0, h, nintervals, r):
        return _bspline1d_vgl(coefs, float(x0), float(h), int(nintervals),
                              jnp.asarray(r))

    def spline3d_v(self, coefs, cell_inverse, dims, r):
        return _spline3d_v(coefs, jnp.asarray(cell_inverse),
                           tuple(int(d) for d in dims), r)

    def spline3d_vgl(self, coefs, cell_inverse, dims, r):
        return _spline3d_vgl(coefs, jnp.asarray(cell_inverse),
                             tuple(int(d) for d in dims), r)

    def spline3d_vgh_tiled(self, coefs, cell_inverse, dims, r, tile):
        return _spline3d_vgh_tiled(coefs, jnp.asarray(cell_inverse),
                                   tuple(int(d) for d in dims), r,
                                   int(tile) if tile else 0)

    def det_ratio(self, phi, ainv_col):
        return float(_det_ratio(phi, ainv_col))

    def det_ratios_vp(self, phi, ainv_cols):
        return _det_ratios_vp(phi, ainv_cols)

    def exp_rows(self, x):
        return jnp.exp(jnp.asarray(x, dtype=jnp.float64))

    def accept_mask(self, rho, log_t, uniforms):
        drift = log_t is not None
        lt = log_t if drift else jnp.zeros_like(jnp.asarray(rho))
        return _accept_mask(jnp.asarray(rho), jnp.asarray(lt),
                            jnp.asarray(uniforms), drift)

    # -- fused sweep pipeline --------------------------------------------------------
    def sweep_step(self, plan, k):
        """Per-electron fused step: the reference pipeline with every
        inner kernel routed through this backend's jitted primitives."""
        from repro.batched.sweep import fused_sweep_step
        with self.scope():
            return fused_sweep_step(self, plan, k)

    def sweep_run(self, plan):
        """Whole-sweep jit: ONE ``_sweep_all`` dispatch moves all n
        electrons, then the host state (batch positions, SoA mirror,
        tables, move log) is resynchronized once.

        The first call per plan builds the device payload (functor
        banks, lattice args, group indices) and caches it on the plan;
        component sets the payload builder does not understand fall back
        to the per-step pipeline, which is still one backend call per
        electron.  Payload staging and the post-sweep host writeback
        are host code by design and live in
        :mod:`repro.backend.jax_sweep_host`, outside this module's
        backend-pure scope.
        """
        from repro.backend.jax_sweep_host import (
            build_sweep_payload, finalize_sweep,
        )
        from repro.batched.sweep import fused_sweep_run

        payload = plan._jax_payload
        if payload is None:
            payload = build_sweep_payload(plan)
            plan._jax_payload = payload if payload is not None else False
        if payload is False or payload is None:
            with self.scope():
                return fused_sweep_run(self, plan)
        batch = plan.batch
        ws = plan.workspace
        R, counts, hist = _sweep_all(
            jnp.asarray(batch.R), jnp.asarray(ws.chi_all),
            jnp.asarray(ws.uniforms), plan.tau, plan.drift_cap,
            *payload["traced"], use_drift=plan.use_drift,
            periodic=payload["periodic"],
            orthogonal=payload["orthogonal"])
        return finalize_sweep(self, plan, R, counts, hist)
