"""Flavor selection for distance tables, keyed by code version strings."""

from __future__ import annotations

from repro.distances.aa_otf import DistanceTableAAOtf
from repro.distances.aa_ref import DistanceTableAARef
from repro.distances.aa_soa import DistanceTableAASoA
from repro.distances.ab_ref import DistanceTableABRef
from repro.distances.ab_soa import DistanceTableABSoA


def create_aa_table(n: int, lattice, flavor: str = "otf", dtype=None):
    """Create an electron-electron table: 'ref', 'soa' or 'otf'.

    ``dtype`` may be a dtype-like, a ``PrecisionPolicy`` (its
    ``value_dtype`` applies), or ``None`` for the full-precision default.
    """
    if flavor == "ref":
        return DistanceTableAARef(n, lattice)
    if flavor == "soa":
        return DistanceTableAASoA(n, lattice, dtype=dtype)
    if flavor == "otf":
        return DistanceTableAAOtf(n, lattice, dtype=dtype)
    raise ValueError(f"unknown AA table flavor {flavor!r}")


def create_ab_table(source, n_target: int, lattice, flavor: str = "soa",
                    dtype=None):
    """Create an electron-ion table: 'ref' or 'soa'.

    ``dtype`` follows the same convention as :func:`create_aa_table`.
    """
    if flavor == "ref":
        return DistanceTableABRef(source, n_target, lattice)
    if flavor in ("soa", "otf"):
        return DistanceTableABSoA(source, n_target, lattice, dtype=dtype)
    raise ValueError(f"unknown AB table flavor {flavor!r}")
