"""Reference AA distance table: packed upper triangle, AoS scalar kernels.

This is Fig. 6(a).  Distances d(i,j) for i<j live in a packed 1D array of
N(N-1)/2 scalars; displacements in a parallel list of TinyVectors.  Every
operation is a per-pair interpreted loop over TinyVector components — the
abstraction-penalty pattern responsible for the Ref profile's DistTable
hot spot.  On acceptance the temporary row is scattered back into the
triangle (N copies at mixed, unaligned offsets).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.containers.tinyvector import TinyVector
from repro.distances.base import BIG_DISTANCE, DistanceTable
from repro.perfmodel.opcount import OPS


class DistanceTableAARef(DistanceTable):
    """Packed-upper-triangle symmetric table with scalar AoS arithmetic."""

    category = "DistTable-AA"

    def __init__(self, n: int, lattice):
        self.n = n
        self.lattice = lattice
        m = n * (n - 1) // 2
        # Packed storage: pair (i, j), i < j, at index loc(i, j).
        self.U: List[float] = [0.0] * m
        self.dU: List[TinyVector] = [TinyVector.zeros(3) for _ in range(m)]
        # Temporaries for the active move.
        self.temp_r_list: List[float] = [0.0] * n
        self.temp_dr_list: List[TinyVector] = [TinyVector.zeros(3) for _ in range(n)]
        self._active = -1

    @staticmethod
    def loc(i: int, j: int, n: int) -> int:
        """Index of pair (i, j), i < j, in the packed upper triangle."""
        if not 0 <= i < j < n:
            raise IndexError(f"bad pair ({i}, {j}) for n={n}")
        # Row-major upper triangle: row i holds n-1-i entries.
        return i * (2 * n - i - 1) // 2 + (j - i - 1)

    # -- full evaluation -----------------------------------------------------------
    def evaluate(self, P) -> None:
        R = P.R_aos
        if R is None:
            raise RuntimeError("ref distance table requires an AoS layout")
        n = self.n
        lat = self.lattice
        idx = 0
        for i in range(n):
            ri = R[i]
            for j in range(i + 1, n):
                d = lat.min_image_disp_scalar(R[j] - ri)  # r_j - r_i
                self.dU[idx] = d
                self.U[idx] = d.norm()
                idx += 1
        OPS.record(self.category,
                   flops=9.0 * n * (n - 1) / 2,
                   rbytes=24.0 * n * (n - 1) / 2,
                   wbytes=32.0 * n * (n - 1) / 2)

    # -- PbyP protocol -----------------------------------------------------------
    def move(self, P, rnew: np.ndarray, k: int) -> None:
        R = P.R_aos
        rn = TinyVector(rnew)
        lat = self.lattice
        for i in range(self.n):
            if i == k:
                self.temp_r_list[i] = BIG_DISTANCE
                self.temp_dr_list[i] = TinyVector.zeros(3)
                continue
            d = lat.min_image_disp_scalar(R[i] - rn)  # r_i - r_new
            self.temp_dr_list[i] = d
            self.temp_r_list[i] = d.norm()
        self._active = k
        OPS.record(self.category, flops=9.0 * self.n,
                   rbytes=24.0 * self.n, wbytes=32.0 * self.n)

    def update(self, k: int) -> None:
        # Scatter the temp row back into the packed triangle: N-1 copies at
        # unaligned offsets (the unfavorable access pattern of Fig. 6a).
        n = self.n
        for i in range(n):
            if i == k:
                continue
            if i < k:
                idx = self.loc(i, k, n)
                # stored as r_k - r_i: displacement from i to the (new) k
                self.dU[idx] = -self.temp_dr_list[i]
            else:
                idx = self.loc(k, i, n)
                self.dU[idx] = self.temp_dr_list[i].copy()
            self.U[idx] = self.temp_r_list[i]
        self._active = -1
        # Scattered single-element writes into the packed triangle touch a
        # whole cache line each (one for the distance, one for the
        # displacement), so the DRAM traffic is line-granular — the
        # unfavorable pattern Fig. 6(a) calls out.
        OPS.record(self.category, rbytes=64.0 * n, wbytes=128.0 * n)

    # -- consumer access -----------------------------------------------------------
    @property
    def temp_r(self) -> List[float]:
        return self.temp_r_list

    @property
    def temp_dr(self) -> List[TinyVector]:
        return self.temp_dr_list

    def dist_row(self, k: int) -> List[float]:
        """Gathered distances from k to all i (scalar gathers, self=BIG)."""
        n = self.n
        out = [BIG_DISTANCE] * n
        for i in range(n):
            if i == k:
                continue
            idx = self.loc(min(i, k), max(i, k), n)
            out[i] = self.U[idx]
        return out

    def disp_row(self, k: int) -> List[TinyVector]:
        """Gathered displacements r_i - r_k (self = zero vector)."""
        n = self.n
        out = [TinyVector.zeros(3) for _ in range(n)]
        for i in range(n):
            if i == k:
                continue
            if k < i:
                out[i] = self.dU[self.loc(k, i, n)].copy()
            else:
                out[i] = -self.dU[self.loc(i, k, n)]
        return out

    def pair_dist(self, i: int, j: int) -> float:
        """Distance between particles i and j (i != j)."""
        if i == j:
            raise ValueError("self distance is undefined")
        return self.U[self.loc(min(i, j), max(i, j), self.n)]

    @property
    def storage_bytes(self) -> int:
        m = self.n * (self.n - 1) // 2
        return m * 8 + m * 3 * 8  # packed distances + displacements, double
