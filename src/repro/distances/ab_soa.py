"""SoA AB (electron-ion) distance table: vectorized rows over ion Rsoa.

Sources are fixed, so no column bookkeeping exists at all — acceptance is
a single contiguous row write.  The ions' SoA container is built once and
reused for the whole calculation (Sec. 7.3).
"""

# repro: hot

from __future__ import annotations

import numpy as np

from repro.containers.aligned import aligned_empty, padded_size
from repro.containers.vsc import VectorSoaContainer
from repro.distances.base import DistanceTable
from repro.perfmodel.opcount import OPS
from repro.precision.policy import resolve_value_dtype


class DistanceTableABSoA(DistanceTable):
    """Asymmetric table over SoA source positions, vectorized kernels."""

    category = "DistTable-AB"

    def __init__(self, source, n_target: int, lattice, dtype=None):
        self.source = source
        self.ns = source.n
        self.nt = n_target
        self.lattice = lattice
        self.dtype = resolve_value_dtype(dtype)
        self.nsp = padded_size(self.ns, self.dtype)
        # Fixed ion positions in SoA, shared across walkers/threads.
        # They are read into accumulation-precision intermediates, so the
        # shared buffer stays double regardless of the table policy.
        if source.Rsoa is not None and source.Rsoa.dtype == np.float64:
            self._src_soa = source.Rsoa.data
        else:
            vsc = VectorSoaContainer(
                self.ns, 3, dtype=np.float64)  # repro: noqa R002
            vsc.copy_in(source.R)
            self._src_soa = vsc.data
        self.distances = aligned_empty((self.nt, self.nsp), self.dtype)
        self.distances[...] = 0
        self.displacements = aligned_empty((self.nt, 3, self.nsp), self.dtype)
        self.displacements[...] = 0
        self.temp_r = np.zeros(self.nsp, dtype=self.dtype)
        self.temp_dr = np.zeros((3, self.nsp), dtype=self.dtype)
        self._active = -1

    def _row_from(self, rk: np.ndarray, out_r: np.ndarray,
                  out_dr: np.ndarray) -> None:
        ns = self.ns
        # Displacement intermediates stay in accumulation precision; the
        # assignment into ``out_dr`` performs the policy downcast.
        dr64 = np.empty((3, ns), dtype=np.float64)  # repro: noqa R002
        for d in range(3):
            dr64[d] = self._src_soa[d, :ns] - rk[d]
        if self.lattice.periodic:
            dr64 = self.lattice.min_image_disp(dr64.T).T
        out_dr[:, :ns] = dr64
        out_r[:ns] = np.sqrt(
            dr64[0] * dr64[0] + dr64[1] * dr64[1] + dr64[2] * dr64[2])

    def evaluate(self, P) -> None:
        R = P.R
        dr = self.source.R[None, :, :] - R[:, None, :]  # [k, I] = ion - electron
        if self.lattice.periodic:
            dr = self.lattice.min_image_disp(dr)
        self.distances[:, : self.ns] = np.sqrt(np.sum(np.square(dr), axis=-1))
        self.displacements[:, :, : self.ns] = np.transpose(dr, (0, 2, 1))
        itemsize = self.dtype.itemsize
        OPS.record(self.category, flops=9.0 * self.nt * self.ns,
                   rbytes=24.0 * (self.nt + self.ns),
                   wbytes=4.0 * itemsize * self.nt * self.ns)

    def move(self, P, rnew: np.ndarray, k: int) -> None:
        # Proposed position promoted to accumulation precision for the
        # min-image math.
        rk = np.asarray(rnew, dtype=np.float64)  # repro: noqa R002
        self._row_from(rk, self.temp_r, self.temp_dr)
        self._active = k
        itemsize = self.dtype.itemsize
        OPS.record(self.category, flops=9.0 * self.ns,
                   rbytes=24.0 * self.ns, wbytes=4.0 * itemsize * self.ns)

    def update(self, k: int) -> None:
        self.distances[k, :] = self.temp_r
        self.displacements[k, :, :] = self.temp_dr
        self._active = -1
        itemsize = self.dtype.itemsize
        OPS.record(self.category, rbytes=4.0 * itemsize * self.ns,
                   wbytes=4.0 * itemsize * self.nsp)

    def dist_row(self, k: int) -> np.ndarray:
        return self.distances[k, : self.ns]

    def disp_row(self, k: int) -> np.ndarray:
        return self.displacements[k, :, : self.ns]

    @property
    def storage_bytes(self) -> int:
        return self.distances.nbytes + self.displacements.nbytes
