"""Compute-on-the-fly AA distance table (Sec. 7.5, final optimization).

Identical storage to the SoA table, but the strided column update is
eliminated: :meth:`move` first recomputes row k from the *current*
positions (a contiguous vectorized kernel) before computing the proposed
row, and :meth:`update` rewrites only row k.  Rows of other particles are
allowed to go stale during the sweep; the O(N²) storage is retained and
refreshed by :meth:`evaluate` because Hamiltonian objects reuse the full
table several times per measurement.
"""

# repro: hot

from __future__ import annotations

import numpy as np

from repro.distances.aa_soa import DistanceTableAASoA
from repro.metrics.registry import METRICS
from repro.perfmodel.opcount import OPS


class DistanceTableAAOtf(DistanceTableAASoA):
    """Forward-only table: row k recomputed on demand, no column updates."""

    forward_update = False

    def move(self, P, rnew: np.ndarray, k: int) -> None:
        # Refresh row k from the current position first — this replaces all
        # the column maintenance the SoA table performed on every accept.
        rk = P.R[k]
        self._row_from(P, rk, self.distances[k], self.displacements[k], k)
        itemsize = self.dtype.itemsize
        OPS.record(self.category, flops=9.0 * self.n,
                   rbytes=24.0 * self.n, wbytes=4.0 * itemsize * self.n)
        METRICS.count("otf_row_recomputes")
        METRICS.add_bytes(4 * itemsize * self.n)
        super().move(P, rnew, k)

    def update(self, k: int) -> None:
        # Contiguous row write only — no strided column traffic.
        self.distances[k, :] = self.temp_r
        self.displacements[k, :, :] = self.temp_dr
        self._active = -1
        itemsize = self.dtype.itemsize
        OPS.record(self.category,
                   rbytes=4.0 * itemsize * self.n,
                   wbytes=4.0 * itemsize * self.np_)
