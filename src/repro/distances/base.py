"""Common distance-table interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

#: Sentinel stored on the AA diagonal so finite-cutoff functors and
#: 1/r kernels mask the self-interaction out without branching.
BIG_DISTANCE = 1.0e30


class DistanceTable(ABC):
    """Abstract distance table attached to a target ParticleSet.

    Life cycle per Monte Carlo step (PbyP sweep):

    * :meth:`evaluate` — full recompute from the target's positions
      (walker load, and again before measurements);
    * :meth:`move` — fill ``temp_r``/``temp_dr`` for a proposed position
      of particle ``k`` (flavors may also refresh the current row);
    * :meth:`update` — commit the temporaries after acceptance.
    """

    #: profile category this table reports to ("DistTable-AA"/"DistTable-AB")
    category: str = "DistTable"

    @abstractmethod
    def evaluate(self, P) -> None:
        """Recompute the whole table from P's current positions."""

    @abstractmethod
    def move(self, P, rnew: np.ndarray, k: int) -> None:
        """Compute temporary distances from proposed position ``rnew`` of
        particle ``k`` to every source."""

    @abstractmethod
    def update(self, k: int) -> None:
        """Accept the proposed move of particle ``k``."""

    @abstractmethod
    def dist_row(self, k: int):
        """Distances from the *current* position of target ``k`` to sources."""

    @abstractmethod
    def disp_row(self, k: int):
        """Displacements r_source - r_k from the current position of ``k``."""

    @property
    @abstractmethod
    def storage_bytes(self) -> int:
        """Bytes of per-walker table storage (for the memory model)."""
