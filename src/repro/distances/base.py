"""Common distance-table interface."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

#: Sentinel stored on the AA diagonal so finite-cutoff functors and
#: 1/r kernels mask the self-interaction out without branching.
BIG_DISTANCE = 1.0e30


class DistanceTable(ABC):
    """Abstract distance table attached to a target ParticleSet.

    Life cycle per Monte Carlo step (PbyP sweep):

    * :meth:`evaluate` — full recompute from the target's positions
      (walker load, and again before measurements);
    * :meth:`move` — fill ``temp_r``/``temp_dr`` for a proposed position
      of particle ``k`` (flavors may also refresh the current row);
    * :meth:`update` — commit the temporaries after acceptance.
    """

    #: profile category this table reports to ("DistTable-AA"/"DistTable-AB")
    category: str = "DistTable"

    @abstractmethod
    def evaluate(self, P) -> None:
        """Recompute the whole table from P's current positions."""

    @abstractmethod
    def move(self, P, rnew: np.ndarray, k: int) -> None:
        """Compute temporary distances from proposed position ``rnew`` of
        particle ``k`` to every source."""

    @abstractmethod
    def update(self, k: int) -> None:
        """Accept the proposed move of particle ``k``."""

    @abstractmethod
    def dist_row(self, k: int):
        """Distances from the *current* position of target ``k`` to sources."""

    @abstractmethod
    def disp_row(self, k: int):
        """Displacements r_source - r_k from the current position of ``k``."""

    def dist_row_array(self, k: int) -> np.ndarray:
        """:meth:`dist_row` normalized to a float64 ``(N,)`` ndarray.

        Ref flavors return plain Python lists and SoA flavors return array
        views; this boundary method gives consumers (the NLPP quadrature
        engine, ratio-only kernels) one dtype-stable shape without per-call
        ``isinstance`` dispatch in hot scopes.
        """
        row = self.dist_row(k)
        if isinstance(row, np.ndarray):
            return row
        return np.asarray(row, dtype=np.float64)

    def disp_row_array(self, k: int) -> np.ndarray:
        """:meth:`disp_row` normalized to a float64 ``(3, N)`` ndarray.

        Handles all three flavors at the boundary: SoA ``(3, N)`` views
        pass through, while Ref flavors returning ``List[TinyVector]`` are
        materialized component-wise.
        """
        row = self.disp_row(k)
        if isinstance(row, np.ndarray):
            return row
        out = np.empty((3, len(row)), dtype=np.float64)
        for j, tv in enumerate(row):
            comps = tv.x if hasattr(tv, "x") else tv
            out[0, j] = comps[0]
            out[1, j] = comps[1]
            out[2, j] = comps[2]
        return out

    @property
    @abstractmethod
    def storage_bytes(self) -> int:
        """Bytes of per-walker table storage (for the memory model)."""
