"""Reference AB (electron-ion) distance table: AoS scalar kernels.

Rows are per target electron; sources (ions) are fixed for the whole run.
The reference implementation walks TinyVectors pair by pair.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.containers.tinyvector import TinyVector
from repro.distances.base import DistanceTable
from repro.perfmodel.opcount import OPS


class DistanceTableABRef(DistanceTable):
    """Asymmetric table, scalar AoS arithmetic, full row storage."""

    category = "DistTable-AB"

    def __init__(self, source, n_target: int, lattice):
        """``source`` is the ion ParticleSet (positions fixed)."""
        self.source = source
        self.ns = source.n
        self.nt = n_target
        self.lattice = lattice
        self.r: List[List[float]] = [[0.0] * self.ns for _ in range(n_target)]
        self.dr: List[List[TinyVector]] = [
            [TinyVector.zeros(3) for _ in range(self.ns)] for _ in range(n_target)]
        self.temp_r_list: List[float] = [0.0] * self.ns
        self.temp_dr_list: List[TinyVector] = [
            TinyVector.zeros(3) for _ in range(self.ns)]
        self._active = -1

    def evaluate(self, P) -> None:
        R = P.R_aos
        if R is None:
            raise RuntimeError("ref distance table requires an AoS layout")
        S = self.source.R_aos
        if S is None:
            S = [TinyVector(row) for row in self.source.R]
        lat = self.lattice
        for k in range(self.nt):
            rk = R[k]
            row_r = self.r[k]
            row_dr = self.dr[k]
            for I in range(self.ns):
                d = lat.min_image_disp_scalar(S[I] - rk)  # ion - electron
                row_dr[I] = d
                row_r[I] = d.norm()
        OPS.record(self.category, flops=9.0 * self.nt * self.ns,
                   rbytes=24.0 * (self.nt + self.ns),
                   wbytes=32.0 * self.nt * self.ns)

    def move(self, P, rnew: np.ndarray, k: int) -> None:
        rn = TinyVector(rnew)
        S = self.source.R_aos
        if S is None:
            S = [TinyVector(row) for row in self.source.R]
        lat = self.lattice
        for I in range(self.ns):
            d = lat.min_image_disp_scalar(S[I] - rn)
            self.temp_dr_list[I] = d
            self.temp_r_list[I] = d.norm()
        self._active = k
        OPS.record(self.category, flops=9.0 * self.ns,
                   rbytes=24.0 * self.ns, wbytes=32.0 * self.ns)

    def update(self, k: int) -> None:
        self.r[k] = list(self.temp_r_list)
        self.dr[k] = [tv.copy() for tv in self.temp_dr_list]
        self._active = -1
        OPS.record(self.category, rbytes=32.0 * self.ns, wbytes=32.0 * self.ns)

    @property
    def temp_r(self) -> List[float]:
        return self.temp_r_list

    @property
    def temp_dr(self) -> List[TinyVector]:
        return self.temp_dr_list

    def dist_row(self, k: int) -> List[float]:
        return self.r[k]

    def disp_row(self, k: int) -> List[TinyVector]:
        return self.dr[k]

    @property
    def storage_bytes(self) -> int:
        return self.nt * self.ns * 8 * 4  # distances + 3-vector displacements
