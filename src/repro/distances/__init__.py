"""Distance tables — the paper's top hot spot and its central optimization.

Electron–electron (**AA**, symmetric) and electron–ion (**AB**) tables in
the flavors of Fig. 6:

* ``ref`` — the QMCPACK 3.0.0 baseline: AoS scalar arithmetic; AA stores
  the packed upper triangle, updated row+column on acceptance (Fig. 6a).
* ``soa`` — full ``N x Np`` per-row storage over SoA positions with the
  **forward update**: on acceptance, write row k contiguously and update
  only the k' > k column entries needed by future moves (Fig. 6b).
* ``otf`` — **compute-on-the-fly**: recompute row k (vectorized) from the
  current positions immediately before the move, eliminating the strided
  column update entirely; the O(N²) storage is retained and refreshed in
  full for the Hamiltonian (Sec. 7.5).

All flavors expose the same consumer API: ``temp_r``/``temp_dr`` for the
proposed position and ``dist_row(k)``/``disp_row(k)`` for the current one.
Displacement convention: ``disp_row(k)[:, i] = min_image(r_i - r_k)``.
"""

from repro.distances.base import BIG_DISTANCE, DistanceTable
from repro.distances.aa_ref import DistanceTableAARef
from repro.distances.aa_soa import DistanceTableAASoA
from repro.distances.aa_otf import DistanceTableAAOtf
from repro.distances.ab_ref import DistanceTableABRef
from repro.distances.ab_soa import DistanceTableABSoA
from repro.distances.factory import create_aa_table, create_ab_table

__all__ = [
    "BIG_DISTANCE",
    "DistanceTable",
    "DistanceTableAARef",
    "DistanceTableAASoA",
    "DistanceTableAAOtf",
    "DistanceTableABRef",
    "DistanceTableABSoA",
    "create_aa_table",
    "create_ab_table",
]
