"""SoA AA distance table with the forward-update scheme (Fig. 6b).

Full ``N x Np`` row storage (memory roughly doubled vs the packed
triangle — the compromise the paper makes) buys contiguous, padded,
vectorizable rows.  On acceptance of the k-th move:

* row k is overwritten contiguously from the temporaries;
* only the k' > k entries of column k are updated (strided by Np), since
  the ordered PbyP sweep never reads d(k', k) for k' < k again before the
  next full evaluation.

Invariant maintained during a sweep: when the sweep reaches particle k,
``dist_row(k)`` is correct.  Rows of already-moved particles may hold
stale entries for later-moved partners; :meth:`evaluate` (called before
measurements) restores the full table.
"""

# repro: hot

from __future__ import annotations

import numpy as np

from repro.containers.aligned import aligned_empty, padded_size
from repro.distances.base import BIG_DISTANCE, DistanceTable
from repro.metrics.registry import METRICS
from repro.perfmodel.opcount import OPS
from repro.precision.policy import resolve_value_dtype


class DistanceTableAASoA(DistanceTable):
    """Symmetric table over SoA positions, vectorized rows, forward update."""

    category = "DistTable-AA"
    forward_update = True

    def __init__(self, n: int, lattice, dtype=None):
        self.n = n
        self.lattice = lattice
        self.dtype = resolve_value_dtype(dtype)
        self.np_ = padded_size(n, self.dtype)
        # distances[k, i] = |min_image(r_i - r_k)|; padding/diagonal = BIG.
        self.distances = aligned_empty((n, self.np_), self.dtype)
        self.distances[...] = BIG_DISTANCE
        # displacements[k, :, i] = min_image(r_i - r_k); padding = 0.
        self.displacements = aligned_empty((n, 3, self.np_), self.dtype)
        self.displacements[...] = 0
        self.temp_r = np.full(self.np_, BIG_DISTANCE, dtype=self.dtype)
        self.temp_dr = np.zeros((3, self.np_), dtype=self.dtype)
        self._active = -1

    # -- vector kernel ---------------------------------------------------------
    def _row_from(self, P, rk: np.ndarray, out_r: np.ndarray,
                  out_dr: np.ndarray, self_index: int) -> None:
        """Distances/displacements from point ``rk`` to all particles.

        One contiguous vector operation per Cartesian component — the
        Python analogue of the compiler-vectorized loop over Rsoa rows.
        """
        n = self.n
        soa = P.Rsoa.data  # (3, Np_pos)
        # Displacement intermediates stay in accumulation precision; the
        # assignment into ``out_dr`` performs the policy downcast.
        dr64 = np.empty((3, n), dtype=np.float64)  # repro: noqa R002
        for d in range(3):
            dr64[d] = soa[d, :n] - rk[d]
        if self.lattice.periodic:
            dr64 = self.lattice.min_image_disp(dr64.T).T
        out_dr[:, :n] = dr64
        r2 = dr64[0] * dr64[0] + dr64[1] * dr64[1] + dr64[2] * dr64[2]
        out_r[:n] = np.sqrt(r2)
        if self_index >= 0:
            out_r[self_index] = BIG_DISTANCE
            out_dr[:, self_index] = 0

    # -- full evaluation -----------------------------------------------------------
    def evaluate(self, P) -> None:
        R = P.R  # (N, 3) float64
        n = self.n
        dr = R[None, :, :] - R[:, None, :]  # dr[k, i] = r_i - r_k
        if self.lattice.periodic:
            dr = self.lattice.min_image_disp(dr)
        dist = np.sqrt(np.sum(np.square(dr), axis=-1))
        self.distances[:, :n] = dist
        self.distances[np.arange(n), np.arange(n)] = BIG_DISTANCE
        self.displacements[:, :, :n] = np.transpose(dr, (0, 2, 1))
        self.displacements[np.arange(n), :, np.arange(n)] = 0
        itemsize = self.dtype.itemsize
        OPS.record(self.category, flops=9.0 * n * n,
                   rbytes=24.0 * n, wbytes=4.0 * itemsize * n * n)

    # -- PbyP protocol -----------------------------------------------------------
    def move(self, P, rnew: np.ndarray, k: int) -> None:
        # Proposed position promoted to accumulation precision for the
        # min-image math.
        rk = np.asarray(rnew, dtype=np.float64)  # repro: noqa R002
        self._row_from(P, rk, self.temp_r, self.temp_dr, k)
        self._active = k
        itemsize = self.dtype.itemsize
        OPS.record(self.category, flops=9.0 * self.n,
                   rbytes=(24.0 + 0.0) * self.n,
                   wbytes=4.0 * itemsize * self.n)

    def update(self, k: int) -> None:
        n = self.n
        # Contiguous row write ...
        self.distances[k, :] = self.temp_r
        self.displacements[k, :, :] = self.temp_dr
        # ... plus the forward (k' > k only) strided column update.  Note
        # the sign flip: row k' stores r_k - r_k' = -(r_k' - r_k_new).
        if k + 1 < n:
            self.distances[k + 1:n, k] = self.temp_r[k + 1:n]
            self.displacements[k + 1:n, :, k] = -self.temp_dr[:, k + 1:n].T
        self._active = -1
        itemsize = self.dtype.itemsize
        OPS.record(self.category,
                   rbytes=4.0 * itemsize * n,
                   wbytes=4.0 * itemsize * (self.np_ + (n - k)))
        METRICS.count("forward_update_rows")
        METRICS.add_bytes(4 * itemsize * (self.np_ + (n - k)))

    # -- consumer access -----------------------------------------------------------
    def dist_row(self, k: int) -> np.ndarray:
        return self.distances[k, : self.n]

    def disp_row(self, k: int) -> np.ndarray:
        return self.displacements[k, :, : self.n]

    def pair_dist(self, i: int, j: int) -> float:
        if i == j:
            raise ValueError("self distance is undefined")
        return float(self.distances[i, j])

    @property
    def storage_bytes(self) -> int:
        return self.distances.nbytes + self.displacements.nbytes
