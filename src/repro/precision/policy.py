"""Precision policy objects threading dtype choices through every kernel."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PrecisionPolicy:
    """Bundle of dtypes + recompute cadence for one build configuration.

    Attributes
    ----------
    name:
        Human-readable label ("full" / "mixed").
    value_dtype:
        Element type of the hot data structures — positions, distance
        tables, Jastrow values, spline coefficients, determinant inverse.
    accum_dtype:
        Type used for per-walker and ensemble accumulation — log|Psi|,
        local energy, running averages.  Always float64, matching the
        paper's "quantities per walker and for the ensemble are computed
        in double precision".
    recompute_period:
        Every this many Monte Carlo generations, walker state (determinant
        inverses, Jastrow sums) is recomputed from scratch in
        ``accum_dtype`` to bound the drift of single-precision updates.
    """

    name: str
    value_dtype: np.dtype = field(default=np.dtype(np.float64))
    accum_dtype: np.dtype = field(default=np.dtype(np.float64))
    recompute_period: int = 0  # 0 = never

    def __post_init__(self):
        object.__setattr__(self, "value_dtype", np.dtype(self.value_dtype))
        object.__setattr__(self, "accum_dtype", np.dtype(self.accum_dtype))
        if self.recompute_period < 0:
            raise ValueError("recompute_period must be >= 0")

    @property
    def is_mixed(self) -> bool:
        return self.value_dtype != self.accum_dtype

    @property
    def value_bytes(self) -> int:
        return self.value_dtype.itemsize

    def should_recompute(self, generation: int) -> bool:
        """True when generation index triggers a from-scratch recompute."""
        if self.recompute_period <= 0:
            return False
        return generation > 0 and generation % self.recompute_period == 0

    def cast_value(self, x):
        """Cast hot-path data to the kernel precision."""
        return np.asarray(x, dtype=self.value_dtype)

    def cast_accum(self, x):
        """Cast accumulator data to the ensemble precision."""
        return np.asarray(x, dtype=self.accum_dtype)


#: Default element type of SoA containers and tables when no policy is
#: threaded to a constructor.  Kernels must not hard-code this — they take
#: a ``dtype``/policy argument and :func:`resolve_value_dtype` it.
DEFAULT_VALUE_DTYPE = np.dtype(np.float64)


def resolve_value_dtype(dtype_or_policy, default=None) -> np.dtype:
    """Map a dtype-like, a :class:`PrecisionPolicy`, or ``None`` to a dtype.

    This is the single funnel through which hot containers and kernels
    resolve their element type, so call sites can pass a policy object
    directly (``VectorSoaContainer(n, 3, dtype=MIXED)``) and ``None``
    means "the default" without every signature hard-coding ``float64``.
    """
    if dtype_or_policy is None:
        return DEFAULT_VALUE_DTYPE if default is None else np.dtype(default)
    if isinstance(dtype_or_policy, PrecisionPolicy):
        return dtype_or_policy.value_dtype
    return np.dtype(dtype_or_policy)


#: Double precision everywhere — the paper's baseline ``QMC_MIXED_PRECISION=0``.
FULL = PrecisionPolicy("full", np.float64, np.float64, recompute_period=0)

#: Expanded single precision with periodic double-precision recompute —
#: the paper's ``QMC_MIXED_PRECISION=1`` plus Sec. 7.2 extensions.
MIXED = PrecisionPolicy("mixed", np.float32, np.float64, recompute_period=16)

#: Mixed-precision *coefficient tables* only: fp32 B-spline storage
#: (halving the shared slab), fp64 stencil accumulation (the gather
#: widens blocks before contraction), and a coarser recompute cadence —
#: the table is read-only, so drift can only come from the downcast
#: itself, checked by :class:`repro.splines.slab.MixedTableGuard`.
TABLE_MIXED = PrecisionPolicy("table-mixed", np.float32, np.float64,
                              recompute_period=64)
