"""Precision policy objects threading dtype choices through every kernel."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PrecisionPolicy:
    """Bundle of dtypes + recompute cadence for one build configuration.

    Attributes
    ----------
    name:
        Human-readable label ("full" / "mixed").
    value_dtype:
        Element type of the hot data structures — positions, distance
        tables, Jastrow values, spline coefficients, determinant inverse.
    accum_dtype:
        Type used for per-walker and ensemble accumulation — log|Psi|,
        local energy, running averages.  Always float64, matching the
        paper's "quantities per walker and for the ensemble are computed
        in double precision".
    recompute_period:
        Every this many Monte Carlo generations, walker state (determinant
        inverses, Jastrow sums) is recomputed from scratch in
        ``accum_dtype`` to bound the drift of single-precision updates.
    """

    name: str
    value_dtype: np.dtype = field(default=np.dtype(np.float64))
    accum_dtype: np.dtype = field(default=np.dtype(np.float64))
    recompute_period: int = 0  # 0 = never

    def __post_init__(self):
        object.__setattr__(self, "value_dtype", np.dtype(self.value_dtype))
        object.__setattr__(self, "accum_dtype", np.dtype(self.accum_dtype))
        if self.recompute_period < 0:
            raise ValueError("recompute_period must be >= 0")

    @property
    def is_mixed(self) -> bool:
        return self.value_dtype != self.accum_dtype

    @property
    def value_bytes(self) -> int:
        return self.value_dtype.itemsize

    def should_recompute(self, generation: int) -> bool:
        """True when generation index triggers a from-scratch recompute."""
        if self.recompute_period <= 0:
            return False
        return generation > 0 and generation % self.recompute_period == 0

    def cast_value(self, x):
        """Cast hot-path data to the kernel precision."""
        return np.asarray(x, dtype=self.value_dtype)

    def cast_accum(self, x):
        """Cast accumulator data to the ensemble precision."""
        return np.asarray(x, dtype=self.accum_dtype)


#: Double precision everywhere — the paper's baseline ``QMC_MIXED_PRECISION=0``.
FULL = PrecisionPolicy("full", np.float64, np.float64, recompute_period=0)

#: Expanded single precision with periodic double-precision recompute —
#: the paper's ``QMC_MIXED_PRECISION=1`` plus Sec. 7.2 extensions.
MIXED = PrecisionPolicy("mixed", np.float32, np.float64, recompute_period=16)
