"""Precision policies (Sec. 7.2 of the paper).

QMCPACK's mixed-precision build (``QMC_MIXED_PRECISION=1``) stores the key
data structures (positions, distance tables, Jastrow functors, B-spline
coefficients, determinant inverses) in single precision and performs the
hot kernels in single precision, while keeping per-walker and ensemble
quantities (log|Psi|, local energy, accumulators) in double precision.
Accuracy is preserved by periodically recomputing the walker state from
scratch in full precision.
"""

from repro.precision.policy import (
    DEFAULT_VALUE_DTYPE, FULL, MIXED, PrecisionPolicy, resolve_value_dtype,
)

__all__ = ["PrecisionPolicy", "FULL", "MIXED", "DEFAULT_VALUE_DTYPE",
           "resolve_value_dtype"]
