"""Precision policies (Sec. 7.2 of the paper).

QMCPACK's mixed-precision build (``QMC_MIXED_PRECISION=1``) stores the key
data structures (positions, distance tables, Jastrow functors, B-spline
coefficients, determinant inverses) in single precision and performs the
hot kernels in single precision, while keeping per-walker and ensemble
quantities (log|Psi|, local energy, accumulators) in double precision.
Accuracy is preserved by periodically recomputing the walker state from
scratch in full precision.
"""

from repro.precision.policy import PrecisionPolicy, FULL, MIXED

__all__ = ["PrecisionPolicy", "FULL", "MIXED"]
