"""Correlated-sampling variance minimization of Jastrow parameters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.jastrow.functor import BsplineFunctor
from repro.workloads.builder import SystemParts


@dataclass
class OptimizationResult:
    """Outcome of one optimization run."""

    initial_params: np.ndarray
    final_params: np.ndarray
    initial_variance: float
    final_variance: float
    initial_energy: float
    final_energy: float
    n_evaluations: int
    history: List[float] = field(default_factory=list)

    @property
    def variance_reduction(self) -> float:
        if self.final_variance <= 0:
            return float("inf")
        return self.initial_variance / self.final_variance

    def summary(self) -> str:
        return (f"variance {self.initial_variance:.4f} -> "
                f"{self.final_variance:.4f} "
                f"({self.variance_reduction:.2f}x reduction), "
                f"<E_L> {self.initial_energy:.4f} -> "
                f"{self.final_energy:.4f}, "
                f"{self.n_evaluations} evaluations")


class JastrowOptimizer:
    """Optimize the two-body Jastrow decay parameters of a built system.

    Parameters are (decay_like, decay_unlike) of the uu/dd and ud
    functors; cusps stay pinned to their exact values (-1/4, -1/2) —
    cusp conditions are physics, not variational freedom.
    """

    def __init__(self, parts: SystemParts, rng: np.random.Generator,
                 n_samples: int = 12, equilibration_sweeps: int = 2):
        self.parts = parts
        self.rng = rng
        self.n_samples = n_samples
        self.equilibration_sweeps = equilibration_sweeps
        self._j2 = parts.twf.component_by_name("J2")
        self._rcut = next(iter(self._j2.functors.values())).rcut
        self._configs: List[np.ndarray] = []
        self._evals = 0

    # -- sampling -----------------------------------------------------------------
    def sample_configurations(self) -> None:
        """Draw configurations from |Psi|^2 with simple Metropolis sweeps
        (no drift needed for decorrelation snapshots)."""
        P, twf = self.parts.electrons, self.parts.twf
        twf.evaluate_log(P)
        import math
        self._configs = []
        sweeps_between = max(1, self.equilibration_sweeps)
        while len(self._configs) < self.n_samples:
            for _ in range(sweeps_between):
                for k in range(P.n):
                    rnew = P.lattice.wrap(
                        P.R[k] + self.rng.normal(0, 0.4, 3))
                    P.make_move(k, rnew)
                    rho = twf.ratio(P, k)
                    if self.rng.uniform() < min(1.0, rho * rho):
                        twf.accept_move(P, k, math.log(abs(rho) + 1e-300))
                        P.accept_move(k)
                    else:
                        twf.reject_move(P, k)
                        P.reject_move(k)
            self._configs.append(P.R.copy())

    # -- objective ----------------------------------------------------------------
    def set_params(self, params: np.ndarray) -> None:
        """Install functors with the given (decay_like, decay_unlike)."""
        like = BsplineFunctor.from_shape(self._rcut, cusp=-0.25,
                                         decay=float(params[0]), name="uu")
        unlike = BsplineFunctor.from_shape(self._rcut, cusp=-0.5,
                                           decay=float(params[1]),
                                           name="ud")
        self._j2.functors[(0, 0)] = like
        self._j2.functors[(1, 1)] = like
        self._j2.functors[(0, 1)] = unlike

    def local_energies(self) -> np.ndarray:
        """E_L over the stored sample with the current parameters."""
        if not self._configs:
            raise RuntimeError("call sample_configurations() first")
        P, twf, ham = self.parts.electrons, self.parts.twf, self.parts.ham
        out = np.empty(len(self._configs))
        for i, R in enumerate(self._configs):
            P.R[...] = R
            P.sync_layouts()
            P.update_tables()
            twf.evaluate_log(P)
            out[i] = ham.evaluate(P, twf)
        return out

    def objective(self, params: np.ndarray) -> float:
        """Sample variance of E_L (with a guard against insane params)."""
        self._evals += 1
        if np.any(params <= 0.05) or np.any(params > 20.0):
            return 1e12  # guard evaluations count too (they hit history)
        self.set_params(params)
        e = self.local_energies()
        return float(np.var(e))

    # -- driver --------------------------------------------------------------------
    def optimize(self, x0: Tuple[float, float] = (1.0, 0.75),
                 max_iterations: int = 40) -> OptimizationResult:
        if not self._configs:
            self.sample_configurations()
        x0 = np.asarray(x0, dtype=np.float64)
        self._evals = 0
        history: List[float] = []

        self.set_params(x0)
        e0 = self.local_energies()

        def wrapped(p):
            v = self.objective(p)
            history.append(v)
            return v

        res = minimize(wrapped, x0, method="Nelder-Mead",
                       options={"maxfev": max_iterations, "xatol": 1e-3,
                                "fatol": 1e-6})
        best = res.x
        self.set_params(best)
        e1 = self.local_energies()
        return OptimizationResult(
            initial_params=x0,
            final_params=np.asarray(best),
            initial_variance=float(np.var(e0)),
            final_variance=float(np.var(e1)),
            initial_energy=float(np.mean(e0)),
            final_energy=float(np.mean(e1)),
            n_evaluations=self._evals,
            history=history,
        )
