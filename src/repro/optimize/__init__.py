"""Trial-wavefunction optimization (the provenance of Fig. 3's functors).

The paper's Jastrow functors are "optimized for a 32-atom supercell of
NiO" — production QMC tunes the functor parameters to minimize the
variance (or energy) of the local energy before any DMC is run, since
the DMC efficiency kappa = 1/(sigma^2 tau_corr T_MC) rewards both a fast
code *and* a tight wavefunction.

:class:`JastrowOptimizer` implements the standard correlated-sampling
scheme: draw a fixed set of configurations from |Psi|^2, then minimize
the sample variance of E_L over the Jastrow shape parameters with the
configurations held fixed.
"""

from repro.optimize.vmc_opt import JastrowOptimizer, OptimizationResult

__all__ = ["JastrowOptimizer", "OptimizationResult"]
