"""In-process MPI-like communicator with byte/latency accounting.

Follows mpi4py's split personality: lowercase methods move Python
objects, uppercase-style array methods move numeric buffers.  All ranks
live in one process; "communication" is bookkeeping plus deep copies, so
the semantics (and the byte counts fed to the interconnect model) match
a real run.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Sequence

import numpy as np


class SimComm:
    """A world of ``size`` ranks with counted collective/point-to-point ops."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("communicator needs at least one rank")
        self.size = size
        self.allreduce_count = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0.0
        self._mailbox: Dict[tuple, list] = {}

    # -- collectives ------------------------------------------------------------
    def allreduce(self, per_rank: Sequence[float],
                  op: Callable = sum) -> List[float]:
        """Reduce one contribution per rank; every rank gets the result."""
        if len(per_rank) != self.size:
            raise ValueError(f"expected {self.size} contributions, "
                             f"got {len(per_rank)}")
        self.allreduce_count += 1
        result = op(per_rank)
        return [result] * self.size

    def allreduce_array(self, per_rank: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Element-wise sum-allreduce of equal-shape arrays."""
        if len(per_rank) != self.size:
            raise ValueError(f"expected {self.size} arrays")
        self.allreduce_count += 1
        total = np.sum(np.stack([np.asarray(a) for a in per_rank]), axis=0)
        return [total.copy() for _ in range(self.size)]

    def allgather(self, per_rank: Sequence[Any]) -> List[List[Any]]:
        if len(per_rank) != self.size:
            raise ValueError(f"expected {self.size} contributions")
        self.allreduce_count += 1
        gathered = list(per_rank)
        return [list(gathered) for _ in range(self.size)]

    # -- point to point -----------------------------------------------------------
    def send(self, src: int, dst: int, obj: Any, nbytes: float | None = None,
             tag: int = 0) -> None:
        """Queue an object from src to dst (deep-copied, like a real wire)."""
        self._check_rank(src)
        self._check_rank(dst)
        self.p2p_messages += 1
        if nbytes is None:
            nbytes = self._estimate_bytes(obj)
        self.p2p_bytes += nbytes
        self._mailbox.setdefault((dst, tag), []).append(copy.deepcopy(obj))

    def recv(self, dst: int, tag: int = 0) -> Any:
        self._check_rank(dst)
        queue = self._mailbox.get((dst, tag), [])
        if not queue:
            raise RuntimeError(f"no message waiting for rank {dst} tag {tag}")
        return queue.pop(0)

    def pending(self, dst: int, tag: int = 0) -> int:
        return len(self._mailbox.get((dst, tag), []))

    # -- helpers --------------------------------------------------------------------
    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.size:
            raise ValueError(f"rank {r} out of range for size {self.size}")

    @staticmethod
    def _estimate_bytes(obj: Any) -> float:
        if hasattr(obj, "message_nbytes"):
            return float(obj.message_nbytes())
        if isinstance(obj, np.ndarray):
            return float(obj.nbytes)
        if isinstance(obj, (list, tuple)):
            return float(sum(SimComm._estimate_bytes(o) for o in obj))
        return 64.0  # metadata-ish

    def reset_counters(self) -> None:
        self.allreduce_count = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0.0
