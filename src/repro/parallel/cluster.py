"""Strong-scaling cluster simulation (Fig. 1).

A generation on M nodes costs

    t_gen = t_walker * (W/M + imbalance)        -- compute
          + lat_allreduce * ceil(log2 M)        -- E_T / averages
          + migrated_bytes / bandwidth + lat    -- load balancing

where W is the target population, ``t_walker`` the measured (or modeled)
per-walker-step time on one node, and the imbalance is the expected
excess of the maximum rank population over the mean for a multinomially
fluctuating DMC population (~sqrt(2 (W/M) ln M / M ... we use the
standard sqrt(2 w ln M) Gumbel estimate with w = W/M walkers/node).

The simulation also runs a discrete per-generation population model with
an actual :class:`SimComm` + :class:`WalkerLoadBalancer` pass, so the
communicated-byte accounting uses real serialized-walker sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.parallel.balancer import WalkerLoadBalancer
from repro.parallel.simcomm import SimComm


@dataclass(frozen=True)
class Interconnect:
    """Latency-bandwidth interconnect model."""

    name: str
    latency_s: float          # per-message latency
    bandwidth_gbs: float      # per-link bandwidth, GB/s

    def transfer_time(self, nbytes: float, messages: int = 1) -> float:
        return messages * self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)


#: Cray Aries dragonfly (Trinity) and Intel Omni-Path (Serrano).
ARIES = Interconnect("Aries", latency_s=1.3e-6, bandwidth_gbs=10.0)
OMNIPATH = Interconnect("Omni-Path", latency_s=1.0e-6, bandwidth_gbs=12.5)


@dataclass
class ScalingPoint:
    """One point on a strong-scaling curve."""

    nodes: int
    throughput: float          # walker-steps/sec, aggregate
    efficiency: float          # vs ideal scaling from the smallest run
    compute_fraction: float    # compute / total time
    comm_bytes_per_gen: float


class SimCluster:
    """Strong-scaling simulator for a DMC population on M nodes."""

    #: residual-imbalance coefficient after per-generation load balancing,
    #: calibrated so NiO-64 at one walker/thread on 1024 nodes lands at the
    #: paper's ~90% parallel efficiency (and ~98% at the BDW runs' larger
    #: walkers-per-task counts).
    IMBALANCE_ALPHA = 0.4

    def __init__(self, node_throughput: float, interconnect: Interconnect,
                 walker_nbytes: float, migration_fraction: float = 0.01,
                 seed: int = 5):
        """``node_throughput``: walker-steps/sec one node sustains;
        ``walker_nbytes``: serialized walker size (message payload);
        ``migration_fraction``: fraction of the population crossing node
        boundaries per generation (DMC branching noise)."""
        if node_throughput <= 0:
            raise ValueError("node_throughput must be positive")
        self.node_throughput = node_throughput
        self.interconnect = interconnect
        self.walker_nbytes = walker_nbytes
        self.migration_fraction = migration_fraction
        self.rng = np.random.default_rng(seed)

    # -- analytic model ---------------------------------------------------------------
    def generation_time(self, nodes: int, population: int) -> tuple:
        """(total, compute, comm) seconds for one DMC generation."""
        w = population / nodes
        if w < 1:
            w = 1.0
        # Residual load imbalance after each generation's walker exchange:
        # a fluctuation-scale excess, not the full un-balanced Gumbel max.
        imbalance = self.IMBALANCE_ALPHA * math.sqrt(
            w * math.log(max(nodes, 2)))
        t_walker = 1.0 / self.node_throughput
        t_compute = (w + imbalance) * t_walker
        # Allreduce (log tree) + walker migration.
        migrated = self.migration_fraction * population / nodes
        t_comm = (self.interconnect.latency_s * math.ceil(math.log2(max(nodes, 2)))
                  + self.interconnect.transfer_time(
                      migrated * self.walker_nbytes,
                      messages=max(1, int(migrated))))
        return t_compute + t_comm, t_compute, t_comm

    def scaling_curve(self, population: int,
                      node_counts: List[int]) -> List[ScalingPoint]:
        """Throughput/efficiency across node counts for a fixed population."""
        points = []
        base = None
        for m in node_counts:
            t_gen, t_comp, _ = self.generation_time(m, population)
            thr = population / t_gen
            if base is None:
                base = (m, thr)
            ideal = base[1] * m / base[0]
            points.append(ScalingPoint(
                nodes=m, throughput=thr, efficiency=thr / ideal,
                compute_fraction=t_comp / t_gen,
                comm_bytes_per_gen=self.migration_fraction * population
                / m * self.walker_nbytes))
        return points

    # -- discrete population simulation -------------------------------------------------
    def simulate_generations(self, nodes: int, population: int,
                             generations: int = 10) -> dict:
        """Run the branching/balance cycle with integer walker counts and
        a real SimComm, returning communication statistics."""
        comm = SimComm(nodes)
        counts = np.full(nodes, population // nodes, dtype=np.int64)
        counts[: population % nodes] += 1
        total_migrated = 0
        max_imbalance = 0
        for _ in range(generations):
            # Branching noise: per-node population fluctuates ~sqrt(count).
            deltas = self.rng.normal(0.0, np.sqrt(counts)).astype(np.int64)
            counts = np.maximum(counts + deltas, 0)
            # Global renormalization toward the target (E_T feedback).
            total = int(np.sum(counts))
            if total == 0:
                counts[:] = 1
                total = nodes
            scale_ = population / total
            counts = np.maximum((counts * scale_).astype(np.int64), 0)
            comm.allreduce(list(counts.astype(float)))
            before = counts.copy()
            plan = WalkerLoadBalancer.plan(list(counts))
            moved = sum(n for _, _, n in plan)
            total_migrated += moved
            max_imbalance = max(max_imbalance,
                                int(np.max(before) - np.min(before)))
            for src, dst, n in plan:
                counts[src] -= n
                counts[dst] += n
                comm.send(src, dst, ("walkers", n),
                          nbytes=n * self.walker_nbytes)
                comm.recv(dst)
        return {
            "allreduces": comm.allreduce_count,
            "messages": comm.p2p_messages,
            "bytes": comm.p2p_bytes,
            "migrated_walkers": total_migrated,
            "max_imbalance": max_imbalance,
            "migrated_per_gen_per_node": total_migrated / generations / nodes,
        }
