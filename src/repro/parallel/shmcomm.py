"""``SharedMemComm`` — the :class:`~repro.parallel.simcomm.SimComm`
collective API across *real* processes.

:class:`SimComm` simulates MPI inside one process (the caller hands in
every rank's contribution at once).  ``SharedMemComm`` keeps the same
collective vocabulary — ``allreduce`` / ``allreduce_array`` /
``allgather`` plus point-to-point ``send``/``recv`` with the same byte
accounting — but each rank is a genuine OS process calling in SPMD
style with *its own* contribution.  Rank 0 (the coordinator) reduces in
rank order and broadcasts, so collective results are deterministic.

Transport is a star of ``multiprocessing.Pipe`` duplex connections
(rank 0 <-> every other rank).  Only *small control payloads* — scalars,
seeds, command tuples — ride the pipes; bulk walker state crosses
process boundaries exclusively through the shared-memory blocks of
:mod:`repro.parallel.shm` (the contract ``repro.lint`` rule R005
enforces on hot scopes).

Crash semantics: every blocking receive takes a timeout; a dead peer
surfaces as :class:`CommTimeout` or :class:`CommPeerLost`, which the
crowd driver converts into its detect-and-respawn path via
:meth:`SharedMemComm.reconnect`.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.lint.sanitizers import sanitizers_enabled
from repro.parallel.simcomm import SimComm


class CommTimeout(RuntimeError):
    """A collective or receive did not complete in time."""

    def __init__(self, message: str, missing: Sequence[int] = ()):
        super().__init__(message)
        self.missing = list(missing)


class CommPeerLost(RuntimeError):
    """The connection to a peer rank returned EOF (process death)."""

    def __init__(self, rank: int):
        super().__init__(f"lost connection to rank {rank}")
        self.rank = rank


class SharedMemComm:
    """One rank's endpoint of a ``size``-rank process communicator."""

    def __init__(self, rank: int, size: int,
                 conns: Dict[int, connection.Connection]):
        self.rank = int(rank)
        self.size = int(size)
        self._conns = conns          # root: {r: conn}; worker: {0: conn}
        self._seq = 0                # SPMD collective sequence number
        #: buffered out-of-band messages: ("p2p", src, tag) -> payloads
        self._p2p_inbox: Dict[Tuple[int, int], List[Any]] = {}
        #: buffered collective contributions: (src, seq) -> payload
        self._coll_inbox: Dict[Tuple[int, int], Any] = {}
        #: root only: (seq, reduce_fn) of a gather that timed out and can
        #: be retried with :meth:`resume` (contributions already received
        #: stay buffered, so a slow rank costs nothing extra)
        self._pending: Optional[Tuple[int, Callable[[List[Any]], Any]]] = None
        # SimComm-compatible accounting
        self.allreduce_count = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0.0
        #: (seq, kind) per collective entered, recorded while sanitizers
        #: are armed; CollectiveOrderChecker cross-checks these at
        #: shutdown (every kind shares one wire protocol, so divergent
        #: kinds succeed on the wire — only the log catches them)
        self.order_log: List[Tuple[int, str]] = []

    # -- world construction ------------------------------------------------------
    @classmethod
    def world(cls, size: int,
              ctx: Optional[mp.context.BaseContext] = None
              ) -> List["SharedMemComm"]:
        """Build all ``size`` endpoints (parent side).  Endpoint ``r > 0``
        is handed to worker process ``r`` as a spawn/fork argument."""
        if size < 1:
            raise ValueError("communicator needs at least one rank")
        ctx = ctx or mp.get_context()
        root_conns: Dict[int, connection.Connection] = {}
        ranks = [cls(0, size, root_conns)]
        for r in range(1, size):
            parent_end, child_end = ctx.Pipe(duplex=True)
            root_conns[r] = parent_end
            ranks.append(cls(r, size, {0: child_end}))
        return ranks

    def reconnect(self, rank: int,
                  ctx: Optional[mp.context.BaseContext] = None
                  ) -> "SharedMemComm":
        """Root only: replace a dead rank's pipe and return the fresh
        endpoint for the respawned process.  Buffered state from the old
        incarnation is discarded."""
        if self.rank != 0:
            raise RuntimeError("only rank 0 can reconnect a peer")
        ctx = ctx or mp.get_context()
        old = self._conns.pop(rank, None)
        if old is not None:
            try:
                old.close()
            except OSError:
                pass
        self._p2p_inbox = {k: v for k, v in self._p2p_inbox.items()
                           if k[0] != rank}
        self._coll_inbox = {k: v for k, v in self._coll_inbox.items()
                            if k[0] != rank}
        parent_end, child_end = ctx.Pipe(duplex=True)
        self._conns[rank] = parent_end
        endpoint = SharedMemComm(rank, self.size, {0: child_end})
        endpoint._seq = self._seq
        return endpoint

    # -- wire helpers ------------------------------------------------------------
    def _recv_routed(self, src: int, timeout: Optional[float]) -> Any:
        """Receive the next raw message from ``src``, raising on EOF or
        timeout; caller dispatches by message kind."""
        conn = self._conns[src]
        if timeout is not None and not conn.poll(timeout):
            raise CommTimeout(
                f"rank {self.rank}: no message from rank {src} within "
                f"{timeout:.1f}s", missing=[src])
        try:
            return conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            raise CommPeerLost(src) from None

    def _pump_until(self, src: int, want_kind: str, want_seq: int,
                    timeout: Optional[float]) -> Any:
        """Read from ``src`` until a message of (kind, seq) arrives,
        buffering everything else for its own consumer."""
        key = (src, want_seq)
        while True:
            if want_kind in ("coll", "collr") and key in self._coll_inbox:
                return self._coll_inbox.pop(key)
            msg = self._recv_routed(src, timeout)
            kind = msg[0]
            if kind == want_kind and msg[1] == want_seq:
                return msg[2]
            if kind == "p2p":
                _, msg_src, tag, payload = msg
                self._p2p_inbox.setdefault((msg_src, tag),
                                           []).append(payload)
            elif kind in ("coll", "collr"):
                self._coll_inbox[(src, msg[1])] = msg[2]
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown message kind {kind!r}")

    def _send_raw(self, dst: int, msg: tuple) -> None:
        try:
            self._conns[dst].send(msg)
        except (OSError, BrokenPipeError):
            raise CommPeerLost(dst) from None

    # -- collectives (SimComm vocabulary, SPMD calling convention) ---------------
    def _collective(self, value: Any, reduce_fn: Callable[[List[Any]], Any],
                    timeout: Optional[float],
                    label: str = "collective") -> Any:
        """Root gathers [rank 0, 1, ..] contributions, reduces in rank
        order, broadcasts; every rank returns the reduced result."""
        self._seq += 1
        self.allreduce_count += 1
        seq = self._seq
        if sanitizers_enabled():
            self.order_log.append((seq, label))
        if self.rank == 0:
            self._coll_inbox[(0, seq)] = value
            self._pending = (seq, reduce_fn)
            return self._finish_collective(timeout)
        self._send_raw(0, ("coll", seq, value))
        return self._pump_until(0, "collr", seq, timeout)

    def _finish_collective(self, timeout: Optional[float]) -> Any:
        """Root only: gather whatever contributions are still missing for
        the pending collective, reduce, broadcast.  Raises
        :class:`CommTimeout` (with the still-missing ranks) while any
        contribution is outstanding; already-received ones stay buffered
        so :meth:`resume` never re-waits for a rank that answered."""
        if self._pending is None:
            raise RuntimeError("no collective pending")
        seq, reduce_fn = self._pending
        missing: List[int] = []
        for r in range(1, self.size):
            if (r, seq) in self._coll_inbox:
                continue
            try:
                self._coll_inbox[(r, seq)] = \
                    self._pump_until(r, "coll", seq, timeout)
            except (CommTimeout, CommPeerLost):
                missing.append(r)
        if missing:
            raise CommTimeout(
                f"collective #{seq} missing contributions from ranks "
                f"{missing}", missing=missing)
        contributions = [self._coll_inbox.pop((r, seq))
                         for r in range(self.size)]
        result = reduce_fn(contributions)
        self._pending = None
        for r in range(1, self.size):
            try:
                self._send_raw(r, ("collr", seq, result))
            except CommPeerLost:
                pass  # the dead peer surfaces on the next gather
        return result

    def resume(self, timeout: Optional[float] = None) -> Any:
        """Root only: retry the gather phase of a timed-out collective
        without advancing the sequence number — the driver's liveness
        poll calls the collective with a short timeout and resumes until
        either everyone answers or a worker is found dead."""
        return self._finish_collective(timeout)

    @property
    def pending(self) -> bool:
        """True while a root-side collective awaits contributions."""
        return self._pending is not None

    def allreduce(self, value: Any, op: Callable = sum,
                  timeout: Optional[float] = None) -> Any:
        """Reduce one contribution per rank; every rank gets the result."""
        return self._collective(value, op, timeout, label="allreduce")

    def allreduce_array(self, array: np.ndarray,
                        timeout: Optional[float] = None) -> np.ndarray:
        """Element-wise sum-allreduce of equal-shape arrays (small control
        arrays only — walker blocks live in shared memory)."""
        return self._collective(
            np.asarray(array),
            lambda parts: np.sum(np.stack(parts), axis=0), timeout,
            label="allreduce_array")

    def allgather(self, value: Any,
                  timeout: Optional[float] = None) -> List[Any]:
        """Every rank contributes one object; all get the rank-ordered list."""
        return self._collective(value, list, timeout, label="allgather")

    def bcast(self, value: Any = None, root: int = 0,
              timeout: Optional[float] = None) -> Any:
        """One-to-all: only ``root``'s value is used (root-only here)."""
        if root != 0:
            raise NotImplementedError("star topology: root must be rank 0")
        return self._collective(value if self.rank == 0 else None,
                                lambda parts: parts[0], timeout,
                                label="bcast")

    def barrier(self, timeout: Optional[float] = None) -> None:
        self._collective(None, list, timeout, label="barrier")

    # -- point to point ----------------------------------------------------------
    def send(self, dst: int, obj: Any, nbytes: Optional[float] = None,
             tag: int = 0) -> None:
        """Send a control payload to ``dst`` (star: one end must be 0)."""
        if dst == self.rank or not 0 <= dst < self.size:
            raise ValueError(f"bad destination rank {dst}")
        if dst != 0 and self.rank != 0:
            raise NotImplementedError(
                "star topology: worker-to-worker payloads go through "
                "shared memory, not the pipes")
        self.p2p_messages += 1
        self.p2p_bytes += (SimComm._estimate_bytes(obj)
                           if nbytes is None else nbytes)
        self._send_raw(dst, ("p2p", self.rank, tag, obj))

    def recv(self, src: int, tag: int = 0,
             timeout: Optional[float] = None) -> Any:
        """Receive the next payload sent by ``src`` with ``tag``."""
        queue = self._p2p_inbox.get((src, tag))
        if queue:
            return queue.pop(0)
        while True:
            msg = self._recv_routed(src, timeout)
            if msg[0] == "p2p":
                _, msg_src, msg_tag, payload = msg
                if msg_src == src and msg_tag == tag:
                    return payload
                self._p2p_inbox.setdefault((msg_src, msg_tag),
                                           []).append(payload)
            else:
                self._coll_inbox[(src, msg[1])] = msg[2]

    def poll_any(self, ranks: Sequence[int],
                 timeout: Optional[float]) -> List[int]:
        """Root only: ranks (subset) whose pipes have data ready."""
        conns = {self._conns[r]: r for r in ranks}
        ready = connection.wait(list(conns), timeout=timeout)
        return [conns[c] for c in ready]

    # -- teardown ---------------------------------------------------------------
    def close(self) -> None:
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._conns = {}
        self._pending = None
        self._p2p_inbox = {}
        self._coll_inbox = {}

    def reset_counters(self) -> None:
        self.allreduce_count = 0
        self.p2p_messages = 0
        self.p2p_bytes = 0.0

    def __repr__(self) -> str:
        return f"SharedMemComm(rank={self.rank}, size={self.size})"
