"""Walker load balancing across ranks (Alg. 1, L14's "load balance").

QMCPACK pairs surplus ranks with deficit ranks after branching and ships
serialized Walker objects point-to-point.  The plan below reproduces
that: sort ranks by imbalance, stream walkers from the biggest surplus
to the biggest deficit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


from repro.parallel.simcomm import SimComm


class WalkerLoadBalancer:
    """Compute and apply minimal walker transfers to equalize load."""

    @staticmethod
    def plan(counts: Sequence[int]) -> List[Tuple[int, int, int]]:
        """Transfer plan [(src, dst, n), ...] equalizing ``counts``.

        Post-condition: every rank holds floor(total/size) or
        ceil(total/size) walkers, and total transfers are minimal.
        """
        counts = list(counts)
        size = len(counts)
        total = sum(counts)
        base, extra = divmod(total, size)
        # Targets: the `extra` ranks with the largest counts keep one more
        # (minimizes movement).
        order = sorted(range(size), key=lambda r: -counts[r])
        target = [base] * size
        for r in order[:extra]:
            target[r] = base + 1
        surplus = [(r, counts[r] - target[r]) for r in range(size)
                   if counts[r] > target[r]]
        deficit = [(r, target[r] - counts[r]) for r in range(size)
                   if counts[r] < target[r]]
        plan: List[Tuple[int, int, int]] = []
        si = di = 0
        while si < len(surplus) and di < len(deficit):
            s_rank, s_n = surplus[si]
            d_rank, d_n = deficit[di]
            n = min(s_n, d_n)
            plan.append((s_rank, d_rank, n))
            s_n -= n
            d_n -= n
            if s_n == 0:
                si += 1
            else:
                surplus[si] = (s_rank, s_n)
            if d_n == 0:
                di += 1
            else:
                deficit[di] = (d_rank, d_n)
        return plan

    @staticmethod
    def apply(populations: List[List], comm: SimComm) -> List[List]:
        """Execute a plan over per-rank walker lists through the comm
        (bytes counted via each walker's message size)."""
        from repro.particles.walker import Walker

        counts = [len(p) for p in populations]
        plan = WalkerLoadBalancer.plan(counts)
        for src, dst, n in plan:
            for _ in range(n):
                w = populations[src].pop()
                comm.send(src, dst, w.serialize(), nbytes=w.message_nbytes())
        for src, dst, n in plan:
            for _ in range(n):
                populations[dst].append(Walker.deserialize(comm.recv(dst)))
        return populations
