"""Shared-memory walker-state blocks for multi-process crowds.

One :class:`SharedWalkerState` owns a single
:mod:`multiprocessing.shared_memory` segment holding the canonical
per-walker arrays of the whole population — ``R`` (W, n, 3) plus the
per-walker scalars (weight, log Psi, E_L, age) — laid out back to back
at 64-byte-aligned offsets.  The parent process creates the segment;
each worker process attaches by name and takes *strided numpy views* of
its crowd's walkers (``arr[c::k]``), so an accepted Metropolis move is
committed straight into shared memory by the batched driver's normal
``WalkerBatch.commit`` write — no pickling of walker state, ever.

Lifecycle contract (see docs/parallel_crowds.md):

* the creating process calls :meth:`unlink` exactly once (idempotent);
  a ``weakref.finalize`` guard unlinks on interpreter exit if the owner
  forgot, so a crashed *parent* cannot leak ``/dev/shm`` segments;
* attaching processes call :meth:`close` only — and their attachment is
  excluded from the ``resource_tracker`` so a worker's exit (normal or
  violent) neither unlinks the segment under the parent nor spams
  tracker warnings.
"""

from __future__ import annotations

import secrets
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Tuple

import numpy as np

from repro.containers.aligned import CACHE_LINE_BYTES

#: field name -> (per-walker shape tail, dtype)
_FIELDS: Tuple[Tuple[str, tuple, str], ...] = (
    ("R", (-1, 3), "float64"),         # -1 = particles per walker
    ("weight", (), "float64"),
    ("logpsi", (), "float64"),
    ("local_energy", (), "float64"),
    ("age", (), "int64"),
)


def _align(offset: int, alignment: int = CACHE_LINE_BYTES) -> int:
    return (offset + alignment - 1) // alignment * alignment


def _layout(nwalkers: int, n: int) -> Tuple[Dict[str, tuple], int]:
    """{field: (offset, shape, dtype)} plus the total segment size."""
    out: Dict[str, tuple] = {}
    offset = 0
    for name, tail, dtype in _FIELDS:
        shape = (nwalkers,) + tuple(n if d == -1 else d for d in tail)
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        offset = _align(offset)
        out[name] = (offset, shape, dtype)
        offset += nbytes
    return out, _align(offset)


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop ``shm`` from this process's resource tracker.

    Attachers must not let their tracker unlink a segment the parent
    owns (Python < 3.13 has no ``track=False``); failure to unregister
    only costs a warning at exit, so errors are swallowed.
    """
    try:  # pragma: no cover - registry internals differ across versions
        resource_tracker.unregister("/" + shm.name.lstrip("/"),
                                    "shared_memory")
    except Exception:
        pass


class SharedWalkerState:
    """The population's canonical walker state in one shared segment."""

    def __init__(self, nwalkers: int, n: int,
                 shm: shared_memory.SharedMemory, owner: bool):
        self.nw = int(nwalkers)
        self.n = int(n)
        self._shm = shm
        self._owner = owner
        layout, _ = _layout(self.nw, self.n)
        for name, (offset, shape, dtype) in layout.items():
            setattr(self, name, np.ndarray(
                shape, dtype=dtype, buffer=shm.buf, offset=offset))
        if owner:
            self._finalizer = weakref.finalize(
                self, SharedWalkerState._cleanup, shm)
        else:
            self._finalizer = None

    # -- construction -----------------------------------------------------------
    @classmethod
    def create(cls, nwalkers: int, n: int) -> "SharedWalkerState":
        """Allocate a fresh segment (parent side) and zero it."""
        _, size = _layout(nwalkers, n)
        name = f"repro-crowds-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        shm.buf[:] = b"\x00" * size
        state = cls(nwalkers, n, shm, owner=True)
        state.weight[...] = 1.0
        return state

    @classmethod
    def attach(cls, name: str, nwalkers: int, n: int) -> "SharedWalkerState":
        """Map an existing segment (worker side), untracked."""
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        return cls(nwalkers, n, shm, owner=False)

    # -- identity / bookkeeping --------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def crowd_views(self, crowd: int, n_crowds: int) -> Dict[str, np.ndarray]:
        """Strided views of crowd ``crowd``'s walkers (round-robin deal:
        crowd c hosts global walkers w with ``w % n_crowds == c``)."""
        return {name: getattr(self, name)[crowd::n_crowds]
                for name, _, _ in _FIELDS}

    def checkpoint(self) -> Dict[str, np.ndarray]:
        """Private (process-local) copy of every field — the parent's
        generation-start snapshot used to restore a crashed crowd."""
        return {name: getattr(self, name).copy() for name, _, _ in _FIELDS}

    def restore(self, snapshot: Dict[str, np.ndarray], crowd: int,
                n_crowds: int) -> None:
        """Overwrite crowd ``crowd``'s slices from a checkpoint."""
        for name, _, _ in _FIELDS:
            getattr(self, name)[crowd::n_crowds] = \
                snapshot[name][crowd::n_crowds]

    def restore_all(self, snapshot: Dict[str, np.ndarray]) -> None:
        """Overwrite every field from a snapshot — used by within-run
        crash recovery and by full-run restart from an on-disk
        :class:`~repro.output.runstate.RunCheckpoint`."""
        for name, _, _ in _FIELDS:
            getattr(self, name)[...] = snapshot[name]

    # -- teardown ---------------------------------------------------------------
    @staticmethod
    def _cleanup(shm: shared_memory.SharedMemory) -> None:
        try:
            shm.close()
        except (BufferError, OSError):  # a view still pins the mapping;
            pass                        # the unlink below must still run
        try:
            # Re-arm the tracker entry first: forked workers share this
            # process's tracker, so their attach-time _untrack() removed
            # our registration and unlink()'s internal unregister would
            # otherwise make the tracker process print a KeyError.
            resource_tracker.register("/" + shm.name.lstrip("/"),
                                      "shared_memory")
        except Exception:  # pragma: no cover - tracker internals
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):  # already gone
            pass

    def close(self) -> None:
        """Drop this process's mapping (attachers); owners also unlink."""
        for name, _, _ in _FIELDS:  # views pin shm.buf; release them first
            if hasattr(self, name):
                delattr(self, name)
        if self._owner:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            self._cleanup(self._shm)
        else:
            try:
                self._shm.close()
            except OSError:  # pragma: no cover
                pass

    unlink = close  # owner-side alias; close() already unlinks for owners

    def __enter__(self) -> "SharedWalkerState":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"SharedWalkerState(nw={self.nw}, n={self.n}, "
                f"name={self._shm.name!r}, owner={self._owner})")


def _trace_layout(steps: int, nwalkers: int,
                  ncomp: int) -> Tuple[Dict[str, tuple], int]:
    shapes = (
        ("weight", (steps, nwalkers)),
        ("local_energy", (steps, nwalkers)),
        ("components", (steps, nwalkers, ncomp)),
    )
    out: Dict[str, tuple] = {}
    offset = 0
    for name, shape in shapes:
        offset = _align(offset)
        out[name] = (offset, shape, "float64")
        offset += int(np.prod(shape)) * 8
    return out, _align(offset)


class SharedTraceBlock:
    """Per-(step, walker) estimator inputs in one shared segment.

    Workers write each generation's per-walker E_L, pre-branch weight and
    Hamiltonian components straight into their crowd's columns
    (``arr[step - 1, c::k]``), so the parent can rebuild the *full*
    estimator series in deterministic (step, walker) order at the end of
    the run — identical across worker counts, and intact across a worker
    crash (a re-run generation simply rewrites its row).
    """

    def __init__(self, steps: int, nwalkers: int, ncomp: int,
                 shm: shared_memory.SharedMemory, owner: bool):
        self.steps = int(steps)
        self.nw = int(nwalkers)
        self.ncomp = int(ncomp)
        self._shm = shm
        self._owner = owner
        layout, _ = _trace_layout(self.steps, self.nw, self.ncomp)
        self._fields = tuple(layout)
        for name, (offset, shape, dtype) in layout.items():
            setattr(self, name, np.ndarray(
                shape, dtype=dtype, buffer=shm.buf, offset=offset))
        if owner:
            self._finalizer = weakref.finalize(
                self, SharedWalkerState._cleanup, shm)
        else:
            self._finalizer = None

    @classmethod
    def create(cls, steps: int, nwalkers: int,
               ncomp: int) -> "SharedTraceBlock":
        _, size = _trace_layout(steps, nwalkers, ncomp)
        name = f"repro-trace-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        shm.buf[:] = b"\x00" * size
        return cls(steps, nwalkers, ncomp, shm, owner=True)

    @classmethod
    def attach(cls, name: str, steps: int, nwalkers: int,
               ncomp: int) -> "SharedTraceBlock":
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        return cls(steps, nwalkers, ncomp, shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def as_arrays(self) -> Dict[str, np.ndarray]:
        """Private copies of every field (safe to keep past close())."""
        return {name: getattr(self, name).copy() for name in self._fields}

    def close(self) -> None:
        for name in self._fields:
            if hasattr(self, name):
                delattr(self, name)
        if self._owner:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            SharedWalkerState._cleanup(self._shm)
        else:
            try:
                self._shm.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "SharedTraceBlock":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
