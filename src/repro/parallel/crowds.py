"""Process-pool crowds over shared-memory WalkerBatch blocks.

This is the repo's real-cores realization of the paper's hierarchical
parallelism: the population of W walkers is dealt round-robin into K
*crowds*, each driven by a :class:`~repro.batched.driver.BatchedCrowdDriver`
running in its own OS process.  The canonical walker state — positions,
weights, log Psi, E_L, age — lives in one
:class:`~repro.parallel.shm.SharedWalkerState` segment; every worker's
``WalkerBatch`` is built over *strided views* of that segment
(``arr[c::K]``), so an accepted Metropolis move is committed straight
into shared memory and **no walker state is ever pickled per step**
(the contract ``repro.lint`` rule R005 enforces on hot scopes).

Per generation the parent (rank 0 of a :class:`SharedMemComm`) runs the
genuine Alg.-1 sync pattern: broadcast the step command with the trial
energy, gather each crowd's population/acceptance token, then reduce
E_mixed **in walker order over the full shared arrays** — the
shared-memory form of the E_T allreduce, and the reason collective
results are bitwise independent of the worker count.  DMC branching
(stochastic-reconfiguration comb, fixed population) is applied by the
parent directly to the shared block, which *is* the walker migration
between crowds: a clone landing in another crowd's slot is nothing more
than the parent rewriting that slot's slices.

Determinism contract (tested in ``tests/parallel/test_crowds.py``):
walker ``w`` owns RNG stream ``w`` of the master seed regardless of
which crowd or process hosts it, per-walker batched arithmetic is
independent of batch width (the PR-2 differential gate), and all
numerically sensitive reductions happen parent-side over walker-ordered
arrays — so energy traces are **bitwise identical** for
``workers`` in {0, 1, N}.

Crash semantics: every generation starts with a parent-side checkpoint
of the shared block.  A dead or wedged worker is detected by liveness
polling inside the collectives; the parent then terminates the pool,
restores the checkpoint, respawns all crowds with
``start_generation = g`` (workers fast-forward their walkers' RNG
streams by replaying the per-generation draw pattern) and re-issues
generation ``g`` — so the post-crash energy trace is bitwise equal to
the crash-free one.  Incidents are counted in ``result.extra`` and the
``crowd_worker_respawns`` metrics counter.
"""

# repro: hot

from __future__ import annotations

import math
import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.batched.driver import BatchedCrowdDriver
from repro.batched.system import BatchedHamiltonian, JastrowSystemSpec, \
    walker_streams
from repro.batched.walkerbatch import WalkerBatch
from repro.drivers.dmc import DMCDriver
from repro.drivers.result import QMCResult
from repro.hamiltonian.nlpp import QuadratureRotations
from repro.estimators.scalar import EstimatorManager
from repro.lint.sanitizers import (CollectiveOrderChecker,
                                   RngStreamSanitizer, ShmRaceSanitizer,
                                   sanitizers_enabled)
from repro.metrics.registry import METRICS
from repro.parallel.shm import SharedTraceBlock, SharedWalkerState
from repro.parallel.shmcomm import CommPeerLost, CommTimeout, SharedMemComm
from repro.precision.policy import FULL, PrecisionPolicy

if TYPE_CHECKING:  # import cycle: repro.splines.slab maps shm via us
    from repro.splines.slab import SharedCoefSlab, SlabDescriptor

__all__ = ["ParallelCrowdDriver"]

#: per-walker fields of the shared state block, in layout order
_STATE_FIELDS = ("R", "weight", "logpsi", "local_energy", "age")


class _WorkerDown(RuntimeError):
    """A worker process died or stopped responding (internal signal)."""


class _LocalWalkerState:  # repro: cold
    """Plain-numpy stand-in for :class:`SharedWalkerState` used by the
    ``workers=0`` serial path, so the driver loop is identical."""

    def __init__(self, nwalkers: int, n: int):
        self.nw = int(nwalkers)
        self.n = int(n)
        self.R = np.zeros((self.nw, self.n, 3))
        self.weight = np.ones(self.nw)
        self.logpsi = np.zeros(self.nw)
        self.local_energy = np.zeros(self.nw)
        self.age = np.zeros(self.nw, dtype=np.int64)

    def crowd_views(self, crowd: int, n_crowds: int) -> Dict[str, np.ndarray]:
        return {name: getattr(self, name)[crowd::n_crowds]
                for name in _STATE_FIELDS}

    def checkpoint(self) -> Dict[str, np.ndarray]:
        return {name: getattr(self, name).copy() for name in _STATE_FIELDS}

    def restore_all(self, snapshot: Dict[str, np.ndarray]) -> None:
        for name in _STATE_FIELDS:
            getattr(self, name)[...] = snapshot[name]

    def close(self) -> None:
        pass


class _LocalTrace:  # repro: cold
    """Plain-numpy stand-in for :class:`SharedTraceBlock` (serial path)."""

    def __init__(self, steps: int, nwalkers: int, ncomp: int):
        self.weight = np.zeros((steps, nwalkers))
        self.local_energy = np.zeros((steps, nwalkers))
        self.components = np.zeros((steps, nwalkers, ncomp))

    def as_arrays(self) -> Dict[str, np.ndarray]:
        return {"weight": self.weight.copy(),
                "local_energy": self.local_energy.copy(),
                "components": self.components.copy()}

    def close(self) -> None:
        pass


class _CrowdEngine:
    """One crowd's driver over its strided views of the shared state.

    Used identically by the serial path (crowd 0 of 1, plain arrays) and
    by every worker process (crowd c of K, shared-memory views), which is
    what makes ``workers=0`` a bitwise reference for ``workers=N``.
    """

    def __init__(self, spec: JastrowSystemSpec, state, trace, crowd: int,
                 n_crowds: int, total_walkers: int, master_seed: int,
                 timestep: float, use_drift: bool,
                 precision: PrecisionPolicy, mode: str,
                 start_generation: int = 1, trace_base: int = 0,
                 backend: Optional[str] = None, spline=None):
        self.crowd = int(crowd)
        #: optional SPO table (a slab-backed or in-process BSpline3D):
        #: when set, every generation appends a per-walker orbital-norm
        #: component through the tile-blocked vgh kernel
        self.spline = spline
        self.n_crowds = int(n_crowds)
        self.mode = mode
        self.tau = float(timestep)
        self.trace = trace
        #: generations completed before this run segment (full-run
        #: resume): trace row 0 holds generation ``trace_base + 1``
        self.trace_base = int(trace_base)
        #: this crowd's columns of the (steps, W) trace arrays
        self.cols = slice(self.crowd, None, self.n_crowds)
        views = state.crowd_views(crowd, n_crowds)
        self.nw = views["R"].shape[0]
        # RNG-stream contract: walker w owns stream w of the master seed
        # no matter which crowd hosts it; a respawned engine fast-forwards
        # by replaying the exact per-generation draw pattern of the sweep
        # (one (n, 3) Gaussian block then n uniforms, per walker).
        streams = walker_streams(master_seed, total_walkers)
        rngs = [streams[w] for w in range(crowd, total_walkers, n_crowds)]
        n = spec.n
        sqrt_tau = math.sqrt(self.tau)
        for _ in range(start_generation - 1):
            for rng in rngs:
                rng.normal(scale=sqrt_tau, size=(n, 3))
            for rng in rngs:
                rng.uniform(size=n)
        batch = WalkerBatch.attach(
            views["R"], views["weight"], views["logpsi"],
            views["local_energy"], views["age"], dtype=precision)
        self.driver = BatchedCrowdDriver(
            spec, self.nw, 0, timestep, use_drift, precision,
            batch=batch, rngs=rngs, backend=backend)
        nlpp = getattr(self.driver.ham, "nlpp", None)
        if nlpp is not None:
            # Quadrature-rotation contract: rotations are keyed on the
            # *global* walker id and the master seed, so crowd membership
            # cannot perturb the NLPP trace.  The serial starts one below
            # the spawn generation: the initial E_L evaluation below
            # bumps it to start_generation, and generation g's measure
            # lands on serial g+1 for crashed and uncrashed crowds alike.
            nlpp.set_rotations(
                QuadratureRotations(master_seed),
                walker_ids=np.arange(crowd, total_walkers, n_crowds),
                serial=start_generation - 1)
        # Initial E_L through the same path measure() uses, so a respawn
        # reproduces the checkpointed values bitwise.
        drv = self.driver
        drv._evaluate_gl()
        batch.local_energy[...] = drv.ham.evaluate(
            batch, drv.tables, drv.G, drv.L)
        self._needs_refresh = False

    @property
    def component_names(self) -> tuple:
        """Trace component order: Hamiltonian terms, then the optional
        SPO diagnostic column."""
        names = tuple(self.driver.ham.names)
        if self.spline is not None:
            names += ("SpoNorm",)
        return names

    def run_generation(self, step: int,
                       e_trial: Optional[float] = None) -> int:  # repro: hot
        """Advance this crowd one generation; returns accepted moves."""
        drv = self.driver
        batch = drv.batch
        if self.mode == "dmc":
            if self._needs_refresh:
                # The parent's branch commit rewrote positions behind the
                # driver's back; resync tables/Rsoa from shared memory.
                drv.refresh_from_positions()
            el_old = batch.local_energy.copy()
            drv.sweep()
            el_new = drv.measure()
            self._record(step, el_new)  # pre-reweight weights, like store_walker
            stuck = drv.last_sweep_accepts == 0
            batch.age[stuck] += 1
            batch.age[~stuck] = 0
            batch.weight *= np.exp(
                -self.tau * (0.5 * (el_old + el_new) - e_trial))
            aged = batch.age > DMCDriver.MAX_AGE
            if np.any(aged):
                batch.weight[aged] = np.minimum(batch.weight[aged], 0.5)
            self._needs_refresh = True
        else:
            if drv.precision.should_recompute(step):
                batch.logpsi[...] = drv._evaluate_log()
            drv.sweep()
            el_new = drv.measure()
            self._record(step, el_new)
            batch.age += 1
        return int(np.sum(drv.last_sweep_accepts))

    def _record(self, step: int, el: np.ndarray) -> None:  # repro: hot  # repro: commit
        """Write this generation's estimator inputs into the trace block
        (strided shared-memory columns — never pickled)."""
        row = step - 1 - self.trace_base
        self.trace.local_energy[row, self.cols] = el
        self.trace.weight[row, self.cols] = self.driver.batch.weight
        comps = self.driver.ham.last_components
        for i, name in enumerate(self.driver.ham.names):
            self.trace.components[row, self.cols, i] = comps[name]
        if self.spline is not None:
            # Per-walker orbital norm at each walker's first particle,
            # through the tile-blocked vgh kernel on the shared table.
            # Every einsum is per-walker independent, so the column is
            # bitwise identical across crowd decompositions.
            from repro.batched.spo import batched_multi_vgh
            v, _, _ = batched_multi_vgh(self.spline,
                                        self.driver.batch.R[:, 0])
            self.trace.components[row, self.cols,
                                  len(self.driver.ham.names)] = \
                np.einsum("wm,wm->w", v, v)


@dataclass
class _WorkerConfig:  # repro: cold
    """Everything a worker process needs, shipped once at spawn."""

    spec: JastrowSystemSpec
    master_seed: int
    total_walkers: int
    n: int
    crowd: int
    n_crowds: int
    timestep: float
    use_drift: bool
    precision: PrecisionPolicy
    mode: str
    steps: int
    start_generation: int
    state_name: str
    trace_name: str
    ncomp: int
    comm: SharedMemComm
    metrics_enabled: bool
    crash_generation: Optional[int] = None  # injected-fault hook (tests)
    #: injected-fault hook (tests): after running this generation, write
    #: into a *frozen* trace row out of band — the race the
    #: ShmRaceSanitizer quiescent-window checksums must catch
    race_generation: Optional[int] = None
    #: generations completed before this run segment (full-run resume);
    #: trace-block row 0 holds generation ``trace_base + 1``
    trace_base: int = 0
    #: per-crowd streaming segment trace (repro.output.stream): file
    #: path, the parent's run meta, and the sorted component order the
    #: merged canonical trace uses
    segment_path: Optional[str] = None
    segment_meta: Optional[dict] = None
    segment_names: Optional[tuple] = None
    #: kernel-backend *name* (picklable; each worker resolves its own
    #: instance), None for REPRO_BACKEND-then-default resolution
    backend: Optional[str] = None
    #: shared read-only SPO coefficient slab to attach (descriptor only
    #: crosses the process boundary — the table itself never pickles)
    slab: Optional[SlabDescriptor] = None


def _segment_open(cfg: _WorkerConfig):  # repro: cold
    """Open (or re-open) this crowd's streaming segment trace.

    Fresh spawns write a deterministic schema-versioned header; respawns
    and full-run resumes roll the file back to the replay generation
    (segments flush every generation, so chunk boundaries align with the
    cut and the continued file stays byte-identical to an uninterrupted
    run's)."""
    from repro.output.stream import TraceField, TraceWriter
    if cfg.start_generation > 1 and os.path.exists(cfg.segment_path):
        return TraceWriter.reopen_below_step(
            cfg.segment_path, cfg.start_generation, flush_every=1)
    names = tuple(cfg.segment_names or ())
    fields = [TraceField("weight", "<f8"), TraceField("local_energy", "<f8")]
    if names:
        fields.append(TraceField("components", "<f8", (len(names),)))
    meta = dict(cfg.segment_meta or {})
    meta["components"] = list(names)
    meta["segment"] = {"crowd": cfg.crowd, "n_crowds": cfg.n_crowds,
                       "total_walkers": cfg.total_walkers}
    return TraceWriter(cfg.segment_path, fields, meta=meta, flush_every=1)


def _segment_append(writer, engine: _CrowdEngine, cfg: _WorkerConfig,
                    step: int) -> None:
    """Append this generation's strided trace-row slice to the crowd's
    segment file, component columns permuted from Hamiltonian order to
    the sorted order the merged canonical trace declares."""
    row = step - 1 - cfg.trace_base
    trace = engine.trace
    cols = engine.cols
    values = {"weight": np.array(trace.weight[row, cols]),
              "local_energy": np.array(trace.local_energy[row, cols])}
    names = tuple(cfg.segment_names or ())
    if names:
        ham_names = engine.component_names
        perm = [ham_names.index(nm) for nm in names]
        values["components"] = np.ascontiguousarray(
            trace.components[row, cols][:, perm])
    writer.append_row(step, values)


def _worker_main(cfg: _WorkerConfig) -> None:  # repro: hot
    """Worker-process entry: attach shared blocks, build the crowd
    engine, then serve generation commands until told to stop."""
    comm = cfg.comm
    state = None
    trace = None
    segment = None
    slab = None
    failed = False
    armed = False
    try:
        METRICS.enabled = bool(cfg.metrics_enabled)
        METRICS.reset()
        if sanitizers_enabled():
            # Fail fast on any global-RNG draw for this whole process:
            # every legitimate stream is a per-walker Generator.
            RngStreamSanitizer.arm()
            armed = True
        state = SharedWalkerState.attach(
            cfg.state_name, cfg.total_walkers, cfg.n)
        trace = SharedTraceBlock.attach(
            cfg.trace_name, cfg.steps, cfg.total_walkers, cfg.ncomp)
        if cfg.slab is not None:
            # Map the one shared coefficient table (read-only) instead
            # of rebuilding or copying it per worker.
            from repro.splines.slab import SharedCoefSlab
            slab = SharedCoefSlab.attach(cfg.slab)
        engine = _CrowdEngine(
            cfg.spec, state, trace, cfg.crowd, cfg.n_crowds,
            cfg.total_walkers, cfg.master_seed, cfg.timestep,
            cfg.use_drift, cfg.precision, cfg.mode, cfg.start_generation,
            cfg.trace_base, backend=cfg.backend,
            spline=slab.as_spline() if slab is not None else None)
        if cfg.segment_path is not None:
            segment = _segment_open(cfg)
        comm.allgather(("ready", cfg.crowd, os.getpid()))
        with METRICS.scope("Crowd"):
            while True:
                cmd = comm.bcast()
                if cmd[0] == "stop":
                    break
                _, step, e_trial = cmd
                if (cfg.crash_generation is not None
                        and step >= cfg.crash_generation):
                    os._exit(23)  # injected fault: die without cleanup
                accepted = engine.run_generation(step, e_trial)
                if segment is not None:
                    # Durable before the done token: the parent may
                    # checkpoint right after this generation.
                    _segment_append(segment, engine, cfg, step)
                if cfg.race_generation == step and step >= 2:
                    # Injected fault: scribble on a frozen history row,
                    # outside any commit scope — exactly the out-of-band
                    # mutation the parent's quiescent-window checksums
                    # exist to catch.
                    trace.local_energy[0, cfg.crowd] += 1.0  # repro: noqa R008 — deliberate race fixture
                comm.allgather(("done", accepted, engine.nw))
        collective_log = list(comm.order_log)
        payload = {
            "crowd": cfg.crowd,
            "nw": engine.nw,
            "n_moves": engine.driver.n_moves,
            "n_accept": engine.driver.n_accept,
            "metrics": METRICS.snapshot() if METRICS.enabled else None,
            "comm": {"allreduce_count": comm.allreduce_count,
                     "p2p_messages": comm.p2p_messages,
                     "p2p_bytes": comm.p2p_bytes},
            "collective_log": collective_log,
        }
        comm.allgather(payload)
    except (CommTimeout, CommPeerLost, EOFError, OSError):
        failed = True  # the parent vanished or replaced this incarnation
    finally:
        if armed:
            RngStreamSanitizer.disarm()
        for obj in (segment, slab, trace, state):
            if obj is not None:
                try:
                    obj.close()
                except Exception:  # pragma: no cover
                    pass
        try:
            comm.close()
        except Exception:  # pragma: no cover
            pass
    if failed:
        os._exit(1)


class ParallelCrowdDriver:  # repro: cold
    """VMC/DMC over K crowd processes sharing one walker-state block.

    ``workers=0`` runs the identical generation loop in-process (the
    bitwise reference); ``workers=K >= 1`` spawns K crowd processes.
    See the module docstring for the determinism and crash contracts.
    """

    def __init__(self, spec: JastrowSystemSpec, nwalkers: int,
                 master_seed: int, workers: int = 0, timestep: float = 0.5,
                 use_drift: bool = True, precision: PrecisionPolicy = FULL,
                 sync_timeout: float = 120.0, liveness_poll: float = 0.25,
                 max_respawns: int = 3, start_method: Optional[str] = None,
                 crash_plan: Optional[Dict[int, int]] = None,
                 race_plan: Optional[Dict[int, int]] = None,
                 backend: Optional[str] = None, spo_slab=None):
        if nwalkers < 1:
            raise ValueError(f"need at least one walker, got {nwalkers}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.spec = spec
        self.nw = int(nwalkers)
        self.master_seed = int(master_seed)
        self.workers = min(int(workers), self.nw)
        self.tau = float(timestep)
        self.use_drift = use_drift
        self.precision = precision
        self.sync_timeout = float(sync_timeout)
        self.liveness_poll = float(liveness_poll)
        self.max_respawns = int(max_respawns)
        #: kernel-backend name shipped to every crowd (None = resolve
        #: REPRO_BACKEND-then-default in each process independently)
        self.backend = backend
        #: optional SPO orbital table: a BSpline3D (promoted to one
        #: shared read-only SharedCoefSlab when workers > 0) or an
        #: already-built SharedCoefSlab.  Adds a per-walker "SpoNorm"
        #: trace component evaluated through the tile-blocked vgh kernel
        #: — bitwise identical across worker counts like every other
        #: column.
        self.spo_slab = spo_slab
        self._slab: Optional[SharedCoefSlab] = None
        self._slab_owned = False
        #: {crowd: generation} — worker ``crowd`` (incarnation 0 only)
        #: calls ``os._exit`` on reaching that generation; test hook for
        #: the detect-and-respawn path.  Ignored when ``workers == 0``.
        self.crash_plan = dict(crash_plan) if crash_plan else None
        #: {crowd: generation} — worker ``crowd`` (incarnation 0 only)
        #: writes a frozen trace row out of band after that generation;
        #: test hook proving the ShmRaceSanitizer fires.  Only active
        #: when sanitizers are armed (the write itself always happens).
        self.race_plan = dict(race_plan) if race_plan else None
        if start_method is None and "fork" in mp.get_all_start_methods():
            start_method = "fork"  # cheapest respawn; spawn also works
        self._ctx = (mp.get_context(start_method) if start_method
                     else mp.get_context())
        self._ham_names = tuple(BatchedHamiltonian.BASE_NAMES)
        if getattr(spec, "with_nlpp", False):
            self._ham_names += ("NonLocalECP",)
        if spo_slab is not None:
            self._ham_names += ("SpoNorm",)
        self.respawns = 0
        self._procs: Dict[int, mp.process.BaseProcess] = {}
        self._comm: Optional[SharedMemComm] = None
        self._state = None
        self._trace = None
        self._engine: Optional[_CrowdEngine] = None
        self._race: Optional[ShmRaceSanitizer] = None
        self._checkpoint: Optional[Dict[str, np.ndarray]] = None
        self._incarnation = 0
        self._mode = "vmc"
        self._steps = 0
        self._trace_base = 0
        #: per-crowd segment trace paths of the latest run (or None)
        self.segment_paths: Optional[List[str]] = None
        self._segment_meta: Optional[dict] = None
        self._segment_names: Optional[tuple] = None
        self._comm_totals = {"allreduce_count": 0, "p2p_messages": 0,
                             "p2p_bytes": 0.0}

    # -- the run loop (shared by serial and process paths) -----------------------
    def run(self, steps: int = 10, mode: str = "vmc", streams=None,
            resume=None, segment_dir: Optional[str] = None,
            abort_after: Optional[int] = None) -> QMCResult:
        """Run ``steps`` generations; one fresh worker pool per call.

        ``streams`` (a :class:`repro.output.stream.StreamSet`) streams
        each generation's walker-ordered trace row to the binary trace +
        online reblocker and checkpoints the full run every
        ``checkpoint_every`` generations.  ``resume`` (a ``kind ==
        "parallel"`` :class:`~repro.output.runstate.RunCheckpoint`)
        continues a checkpointed run bitwise: the shared walker block,
        branch RNG and feedback scalars are restored and every crowd
        respawns at ``start_generation = step + 1`` — the same
        fast-forward path that makes within-run crash recovery bitwise,
        so the continued trace and error bars equal an uninterrupted
        run's.  ``segment_dir`` turns on per-crowd segment trace files
        (``crowd{c}of{K}.trace``) that merge into the canonical trace
        via :func:`repro.output.stream.merge_crowd_segments`.
        ``abort_after`` is the restart battery's kill hook: the parent
        ``os._exit(17)`` s right after that generation's checkpoint, like
        a SIGKILL landing between generations (shared segments are left
        for the harness to reap).
        """
        if mode not in ("vmc", "dmc"):
            raise ValueError(f"unknown mode {mode!r}")
        if steps < 1:
            raise ValueError(f"need at least one step, got {steps}")
        start_gen = 0
        if resume is not None:
            if resume.kind != "parallel":
                raise ValueError(
                    f"checkpoint kind {resume.kind!r} is not a parallel run")
            if resume.meta.get("mode") != mode:
                raise ValueError(
                    f"checkpoint is a {resume.meta.get('mode')!r} run, "
                    f"not {mode!r}")
            if int(resume.meta.get("nwalkers", -1)) != self.nw \
                    or int(resume.meta.get("seed", -1)) != self.master_seed:
                raise ValueError(
                    "checkpoint population/seed do not match this driver")
            start_gen = int(resume.step)
        self._mode = mode
        self._steps = int(steps)
        self._trace_base = start_gen
        self._incarnation = 0
        self.respawns = 0
        self._comm_totals = {"allreduce_count": 0, "p2p_messages": 0,
                             "p2p_bytes": 0.0}
        W, n = self.nw, self.spec.n
        ncomp = len(self._ham_names)
        shared = self.workers > 0
        self.segment_paths = None
        self._segment_meta = None
        self._segment_names = None
        if shared and segment_dir is not None:
            os.makedirs(segment_dir, exist_ok=True)
            K = self.workers
            self.segment_paths = [
                os.path.join(segment_dir, f"crowd{c}of{K}.trace")
                for c in range(K)]
            self._segment_meta = dict(streams.meta) if streams is not None \
                else {}
            self._segment_names = tuple(sorted(self._ham_names))
        if self.spo_slab is not None and self._slab is None:
            from repro.splines.slab import SharedCoefSlab
            if isinstance(self.spo_slab, SharedCoefSlab):
                self._slab = self.spo_slab
                self._slab_owned = False
            elif shared:
                # One physical table for the whole pool: promote once,
                # ship only the picklable descriptor to each crowd.
                self._slab = SharedCoefSlab.promote(self.spo_slab)
                self._slab_owned = True
        t_setup = time.perf_counter()
        if shared:
            self._state = SharedWalkerState.create(W, n)
            self._trace = SharedTraceBlock.create(steps, W, ncomp)
        else:
            self._state = _LocalWalkerState(W, n)
            self._trace = _LocalTrace(steps, W, ncomp)
        state = self._state
        if resume is not None:
            state.restore_all(resume.shared_state)
        else:
            state.R[...] = self.spec.initial_positions(W)
        label = "ParallelDMC" if mode == "dmc" else "ParallelVMC"
        result = QMCResult(
            method=f"{mode.upper()}(crowds x{max(self.workers, 1)})",
            steps=steps)
        branch_rng = np.random.default_rng(
            np.random.SeedSequence(self.master_seed).spawn(W + 1)[W])
        accepted_total = 0
        if resume is not None:
            branch_rng.bit_generator.state = resume.rng_states["branch"]
            accepted_total = int(resume.scalars["accepted_total"])
        armed = False
        if sanitizers_enabled():
            # Same fail-fast global-RNG guard the workers arm; stream
            # construction (default_rng/SeedSequence) stays allowed.
            RngStreamSanitizer.arm()
            armed = True
            if shared:
                self._race = ShmRaceSanitizer()
        try:
            if shared:
                self._ensure_pool(start_gen + 1)
            else:
                spline = None
                if self._slab is not None:
                    spline = self._slab.as_spline()
                elif self.spo_slab is not None:
                    spline = self.spo_slab
                self._engine = _CrowdEngine(
                    self.spec, state, self._trace, 0, 1, W,
                    self.master_seed, self.tau, self.use_drift,
                    self.precision, mode, start_gen + 1, start_gen,
                    backend=self.backend, spline=spline)
            setup_s = time.perf_counter() - t_setup
            e_trial = (float(np.mean(state.local_energy))
                       if mode == "dmc" else None)
            e_best = e_trial
            if resume is not None and mode == "dmc":
                e_trial = float(resume.scalars["e_trial"])
                e_best = float(resume.scalars["e_best"])
            t0 = time.perf_counter()
            with METRICS.scope(label):
                for step in range(start_gen + 1, start_gen + steps + 1):
                    self._checkpoint = state.checkpoint()
                    if shared:
                        self._race_begin(step)
                        accepted_total += self._parallel_generation(
                            step, e_trial)
                        self._race_end(step)
                    else:
                        accepted_total += self._engine.run_generation(
                            step, e_trial)
                    if streams is not None:
                        self._stream_row(streams, step,
                                         step - 1 - start_gen)
                    el = state.local_energy
                    if mode == "vmc":
                        result.energies.append(float(np.mean(el)))
                        result.populations.append(W)
                    else:
                        # E_T sync (Alg. 1, L14): the shared-memory form
                        # of the allreduce — reduce in walker order over
                        # the full shared arrays, every crowd sees the
                        # result in the next generation's broadcast.
                        weights = state.weight
                        wsum = float(np.sum(weights))
                        if wsum > 0.0:
                            e_mixed = float(np.sum(weights * el) / wsum)
                        else:  # extinction guard: reset and carry on
                            e_mixed = float(np.mean(el))
                            state.weight[...] = 1.0
                        result.energies.append(e_mixed)
                        with METRICS.scope("branch"):
                            self._branch_comb(state, branch_rng)
                        e_best = 0.25 * e_best + 0.75 * e_mixed
                        feedback = 1.0 / (
                            DMCDriver.FEEDBACK_GENERATIONS * self.tau)
                        e_trial = e_best - feedback * math.log(W / W)
                        result.populations.append(W)
                        result.trial_energies.append(e_trial)
                    if shared:
                        self._race_seal_state()
                    if streams is not None and streams.want_checkpoint(step):
                        self._save_run_checkpoint(
                            streams, step, mode, branch_rng,
                            accepted_total, e_trial, e_best)
                    if abort_after is not None and step >= abort_after:
                        # Restart-battery kill hook: die like a SIGKILL
                        # between generations — checkpoint and trace are
                        # already durable; no flush/close/unlink runs.
                        # Workers are torn down first only because they
                        # inherit every comm pipe fd at fork: orphans
                        # would deadlock in recv() holding each other's
                        # write ends open (they carry no durable state —
                        # segment files flush every generation).
                        self._terminate_pool()
                        os._exit(17)
            elapsed = time.perf_counter() - t0
            trace_data = self._trace.as_arrays()
            worker_stats = self._finalize() if shared else None
        finally:
            if armed:
                RngStreamSanitizer.disarm()
            self._teardown()
        result.online = streams.online if streams is not None else None
        result.elapsed = elapsed
        moves = (start_gen + steps) * W * n
        result.acceptance = accepted_total / moves if moves else 0.0
        result.estimators = self._build_estimators(trace_data)
        result.extra["moves"] = float(moves)
        result.extra["accepted"] = float(accepted_total)
        result.extra["workers"] = float(self.workers)
        result.extra["respawns"] = float(self.respawns)
        result.extra["setup_seconds"] = float(setup_s)
        if shared:
            result.extra["comm_allreduces"] = float(
                self._comm_totals["allreduce_count"])
            result.extra["comm_p2p_bytes"] = float(
                self._comm_totals["p2p_bytes"])
            if worker_stats:
                result.extra["worker_moves"] = float(
                    sum(p["n_moves"] for p in worker_stats))
        return result

    def run_dmc(self, steps: int = 10) -> QMCResult:
        return self.run(steps=steps, mode="dmc")

    # -- streaming + full-run checkpoints ----------------------------------------
    def _stream_row(self, streams, step: int, row: int) -> None:
        """Feed one generation's walker-ordered trace-block row to the
        stream bundle (binary trace + online reblocker) — the same
        pre-reweight values ``_build_estimators`` replays at end of run,
        so online results are bitwise independent of the worker count."""
        trace = self._trace
        el = np.array(trace.local_energy[row])
        wt = np.array(trace.weight[row])
        comps = {name: np.array(trace.components[row, :, i])
                 for i, name in enumerate(self._ham_names)}
        streams.record(step, el, wt, comps)

    def _save_run_checkpoint(self, streams, step: int, mode: str,
                             branch_rng: np.random.Generator,
                             accepted_total: int, e_trial, e_best) -> None:
        """Durable end-of-generation snapshot: the shared walker block
        (post-branch), the branch RNG and the feedback scalars.  Worker
        RNG streams are *not* stored — a resume respawns every crowd at
        ``step + 1`` and the engines fast-forward deterministically,
        exactly like within-run crash recovery."""
        from repro.output.runstate import (RunCheckpoint, rng_state,
                                           save_run_checkpoint)
        scalars = {"accepted_total": float(accepted_total)}
        if mode == "dmc":
            scalars["e_trial"] = float(e_trial)
            scalars["e_best"] = float(e_best)
        ckpt = RunCheckpoint(
            kind="parallel", step=step,
            rng_states={"branch": rng_state(branch_rng)},
            scalars=scalars,
            shared_state={name: np.array(getattr(self._state, name))
                          for name in _STATE_FIELDS},
            online_state=(streams.online.state_dict()
                          if streams.online is not None else None),
            trace_position=streams.trace_position.as_array(),
            meta={"mode": mode, "nwalkers": self.nw,
                  "seed": self.master_seed, "n": self.spec.n},
        )
        save_run_checkpoint(streams.checkpoint_path, ckpt)

    # -- parent-side DMC branch (walker migration between crowds) ----------------
    def _branch_comb(self, state, rng: np.random.Generator) -> None:
        """Stochastic-reconfiguration comb over the shared block: exactly
        W survivors, weights reset to 1, clones' age reset — applied by
        rewriting slices in shared memory, which *is* the inter-crowd
        walker migration (a pick landing in another crowd's slot)."""
        W = self.nw
        weights = state.weight.copy()
        total = float(np.sum(weights))
        cum = np.cumsum(weights) / total
        u0 = rng.uniform(0.0, 1.0 / W)
        points = u0 + np.arange(W) / W
        picks = np.minimum(np.searchsorted(cum, points), W - 1)
        age = state.age[picks].copy()
        first = np.zeros(W, dtype=bool)
        first[np.unique(picks, return_index=True)[1]] = True
        age[~first] = 0  # clones restart the stuck-walker clock
        state.R[...] = state.R[picks]
        state.logpsi[...] = state.logpsi[picks]
        state.local_energy[...] = state.local_energy[picks]
        state.age[...] = age
        state.weight[...] = 1.0

    # -- shm race quiescent windows (ShmRaceSanitizer, armed runs only) ----------
    def _race_begin(self, step: int) -> None:
        """Close the inter-generation state window (nobody may have
        written walker state since the parent's last commit) and seal
        the frozen trace history before workers write row ``step - 1``."""
        race = self._race
        if race is None:
            return
        for name in _STATE_FIELDS:
            race.verify(f"state/{name}", getattr(self._state, name))
        hist = step - 1 - self._trace_base
        if hist > 0:
            race.seal("trace/local_energy",
                      self._trace.local_energy[:hist])
            race.seal("trace/weight", self._trace.weight[:hist])
            race.seal("trace/components", self._trace.components[:hist])

    def _race_end(self, step: int) -> None:
        """Every worker's done token happened-before this point, so an
        out-of-band write to the frozen history is detected
        deterministically — not probabilistically."""
        race = self._race
        if race is None:
            return
        hist = step - 1 - self._trace_base
        if hist > 0:
            race.verify("trace/local_energy",
                        self._trace.local_energy[:hist])
            race.verify("trace/weight", self._trace.weight[:hist])
            race.verify("trace/components", self._trace.components[:hist])

    def _race_seal_state(self) -> None:
        """Open the inter-generation window: the parent's commits for
        this generation (branch comb, weight resets) are done; nothing
        may write walker state until the next generation command."""
        race = self._race
        if race is None:
            return
        for name in _STATE_FIELDS:
            race.seal(f"state/{name}", getattr(self._state, name))

    # -- process-pool management -------------------------------------------------
    def _spawn_pool(self, start_generation: int) -> None:
        """Build a fresh communicator and spawn all K crowd processes;
        completes the ready barrier (engines built, E_L initialized)."""
        K = self.workers
        endpoints = SharedMemComm.world(K + 1, ctx=self._ctx)
        self._comm = endpoints[0]
        crash_plan = self.crash_plan if self._incarnation == 0 else None
        race_plan = self.race_plan if self._incarnation == 0 else None
        self._incarnation += 1
        for r in range(1, K + 1):
            crowd = r - 1
            cfg = _WorkerConfig(
                spec=self.spec, master_seed=self.master_seed,
                total_walkers=self.nw, n=self.spec.n, crowd=crowd,
                n_crowds=K, timestep=self.tau, use_drift=self.use_drift,
                precision=self.precision, mode=self._mode,
                steps=self._steps, start_generation=start_generation,
                state_name=self._state.name, trace_name=self._trace.name,
                ncomp=len(self._ham_names), comm=endpoints[r],
                metrics_enabled=METRICS.enabled,
                crash_generation=(crash_plan or {}).get(crowd),
                race_generation=(race_plan or {}).get(crowd),
                trace_base=self._trace_base,
                segment_path=(self.segment_paths[crowd]
                              if self.segment_paths else None),
                segment_meta=self._segment_meta,
                segment_names=self._segment_names,
                backend=self.backend,
                slab=(self._slab.descriptor
                      if self._slab is not None else None))
            proc = self._ctx.Process(
                target=_worker_main, args=(cfg,),
                name=f"repro-crowd-{crowd}", daemon=True)
            proc.start()
            endpoints[r].close()  # parent drops its copy of the child end
            self._procs[r] = proc
        self._sync(lambda t: self._comm.allgather(None, timeout=t))

    def _ensure_pool(self, step: int) -> None:
        while self._comm is None:
            try:
                self._spawn_pool(step)
            except _WorkerDown as exc:
                self._handle_crash(exc)

    def _parallel_generation(self, step: int,
                             e_trial: Optional[float]) -> int:
        """One generation across the pool, surviving worker crashes:
        command broadcast, crowd execution, done-token allgather."""
        while True:
            try:
                self._ensure_pool(step)
                self._sync(lambda t: self._comm.bcast(
                    ("gen", step, e_trial), timeout=t))
                stats = self._sync(lambda t: self._comm.allgather(
                    None, timeout=t))
                return sum(s[1] for s in stats if s is not None)
            except _WorkerDown as exc:
                self._handle_crash(exc)

    def _sync(self, op):
        """Run a root-side collective with liveness-aware polling: wait
        in short slices, checking worker processes between slices, so a
        dead worker surfaces in ~``liveness_poll`` seconds rather than
        after the full ``sync_timeout``."""
        deadline = time.monotonic() + self.sync_timeout
        call = op
        while True:
            try:
                return call(self.liveness_poll)
            except CommPeerLost as exc:
                raise _WorkerDown(str(exc)) from exc
            except CommTimeout as exc:
                dead = [r for r, p in self._procs.items()
                        if not p.is_alive()]
                if dead:
                    raise _WorkerDown(
                        f"worker ranks {dead} died "
                        f"(exitcodes {[self._procs[r].exitcode for r in dead]})"
                    ) from exc
                if time.monotonic() > deadline:
                    raise _WorkerDown(
                        f"ranks {exc.missing} unresponsive for "
                        f"{self.sync_timeout:.0f}s") from exc
                if self._comm is not None and self._comm.pending:
                    call = lambda t: self._comm.resume(timeout=t)

    def _handle_crash(self, exc: _WorkerDown) -> None:
        """Detect-and-respawn: count the incident, tear the pool down,
        re-deal the walkers from the generation-start checkpoint.  The
        next ``_ensure_pool`` respawns every crowd at the current
        generation (RNG streams fast-forwarded), so the rerun is bitwise
        identical to a crash-free run."""
        self.respawns += 1
        METRICS.count("crowd_worker_respawns")
        self._terminate_pool()
        if self._race is not None:
            # the restored checkpoint legitimately rewrites shared state
            self._race.clear()
        if self.respawns > self.max_respawns:
            raise RuntimeError(
                f"gave up after {self.respawns - 1} respawns: {exc}")
        if self._checkpoint is not None:
            for name in _STATE_FIELDS:
                getattr(self._state, name)[...] = self._checkpoint[name]

    def _terminate_pool(self) -> None:
        for proc in self._procs.values():
            proc.join(timeout=0.5)  # grace for workers already exiting
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck in kernel
                proc.kill()
                proc.join(timeout=5.0)
        self._procs = {}
        if self._comm is not None:
            for key in ("allreduce_count", "p2p_messages", "p2p_bytes"):
                self._comm_totals[key] += getattr(self._comm, key)
            self._comm.close()
            self._comm = None

    def _finalize(self) -> List[dict]:
        """Stop the pool and collect the one-shot final payloads (crowd
        counters + metrics snapshots), merging each worker's metrics tree
        into the parent registry in crowd order."""
        payloads = None
        while payloads is None:
            try:
                self._ensure_pool(self._trace_base + self._steps + 1)
                self._sync(lambda t: self._comm.bcast(("stop",), timeout=t))
                gathered = self._sync(lambda t: self._comm.allgather(
                    None, timeout=t))
                payloads = [p for p in gathered if p is not None]
            except _WorkerDown as exc:
                self._handle_crash(exc)
        for p in sorted(payloads, key=lambda d: d["crowd"]):
            if p.get("metrics") and METRICS.enabled:
                METRICS.merge_snapshot(p["metrics"],
                                       label=f"crowd-{p['crowd']}")
            for key in ("allreduce_count", "p2p_messages", "p2p_bytes"):
                self._comm_totals[key] += p["comm"][key]
        if self._race is not None:
            # every worker's final payload happened-before this point:
            # the state sealed after the last generation must be intact
            for name in _STATE_FIELDS:
                self._race.verify(f"state/{name}",
                                  getattr(self._state, name))
        if sanitizers_enabled() and self.respawns == 0 \
                and len(payloads) == self.workers:
            # Cross-check the SPMD collective call sequences.  Skipped
            # after a respawn: a replacement incarnation's log starts
            # mid-run, so per-rank logs legitimately differ in length.
            checker = CollectiveOrderChecker()
            for p in payloads:
                if p.get("collective_log") is not None:
                    checker.add_sequence(p["crowd"], p["collective_log"])
            checker.verify()
        self._terminate_pool()
        return payloads

    # -- estimators (rebuilt parent-side from the trace block) -------------------
    def _build_estimators(self,
                          trace_data: Dict[str, np.ndarray]
                          ) -> EstimatorManager:
        """Rebuild the scalar estimator series in (step, walker) order
        from the trace block — the same order the serial batched driver
        accumulates in, hence identical across worker counts."""
        est = EstimatorManager()
        le = trace_data["local_energy"]
        wt = trace_data["weight"]
        comps = trace_data["components"]
        for s in range(le.shape[0]):
            for w in range(le.shape[1]):
                weight = float(wt[s, w])
                est.accumulate("LocalEnergy", float(le[s, w]), weight)
                for i, name in enumerate(self._ham_names):
                    est.accumulate(name, float(comps[s, w, i]), weight)
        return est

    # -- lifecycle ---------------------------------------------------------------
    def _teardown(self) -> None:
        self._terminate_pool()
        for obj in (self._trace, self._state):
            if obj is not None:
                obj.close()
        if self._slab is not None and self._slab_owned:
            self._slab.close()
        self._slab = None
        self._slab_owned = False
        self._trace = None
        self._state = None
        self._engine = None
        self._race = None
        self._checkpoint = None

    def close(self) -> None:
        """Idempotent external cleanup (pool, shared segments)."""
        self._teardown()

    def __enter__(self) -> "ParallelCrowdDriver":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ParallelCrowdDriver(nw={self.nw}, workers={self.workers}, "
                f"seed={self.master_seed})")
