"""Multi-node and multi-core parallelism layers.

Two tiers live here.  The *simulated* tier (Fig. 1): QMCPACK's
communication pattern is tiny and fixed (Sec. 8) — an allreduce per
generation for E_T / global averages, plus send/recv of serialized
Walker objects during load balancing.  :class:`SimComm` reproduces that
pattern in-process with full byte accounting; :class:`WalkerLoadBalancer`
implements the excess-to-deficit walker exchange; :class:`SimCluster`
combines them with a node performance model and an interconnect model
into the strong-scaling curves of Fig. 1.

The *real-cores* tier (docs/parallel_crowds.md):
:class:`ParallelCrowdDriver` runs one batched crowd per worker process
over :class:`SharedWalkerState` shared-memory blocks, with
:class:`SharedMemComm` carrying the same collective vocabulary as
:class:`SimComm` across genuine OS processes.
"""

from repro.parallel.simcomm import SimComm
from repro.parallel.balancer import WalkerLoadBalancer
from repro.parallel.cluster import SimCluster, Interconnect, ScalingPoint
from repro.parallel.distributed import DistributedDMCDriver
from repro.parallel.shm import SharedTraceBlock, SharedWalkerState
from repro.parallel.shmcomm import CommPeerLost, CommTimeout, SharedMemComm
from repro.parallel.crowds import ParallelCrowdDriver

__all__ = [
    "SimComm", "WalkerLoadBalancer",
    "SimCluster", "Interconnect", "ScalingPoint",
    "DistributedDMCDriver",
    "SharedWalkerState", "SharedTraceBlock",
    "SharedMemComm", "CommTimeout", "CommPeerLost",
    "ParallelCrowdDriver",
]
