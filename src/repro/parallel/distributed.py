"""Distributed DMC: the full multi-rank algorithm over SimComm.

This is Alg. 1 with its communication pattern made explicit — what an
MPI-parallel QMCPACK run does every generation:

1. each rank sweeps its local walkers (drift-diffusion + branching
   weights) on its own compute clones;
2. one **allreduce** combines the weighted energy sums into the global
   mixed estimator and the trial energy E_T;
3. each rank branches locally;
4. an **allgather** of population counts feeds the load balancer, and
   surplus walkers travel **rank-to-rank as serialized messages**
   (positions + properties + anonymous buffer), with every byte counted.

Ranks live in one process (deterministic, testable); the communication
volume and pattern match the real thing — the paper's point that the
transformation leaves communications untouched is directly checkable
here (Ref and Current runs produce identical message *counts*, different
message *sizes*).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.drivers.dmc import DMCDriver
from repro.drivers.result import QMCResult
from repro.parallel.balancer import WalkerLoadBalancer
from repro.parallel.simcomm import SimComm
from repro.particles.walker import Walker


@dataclass
class DistributedStats:
    """Communication accounting for a distributed run."""

    allreduces: int = 0
    messages: int = 0
    bytes: float = 0.0
    migrated_walkers: int = 0
    per_generation_imbalance: List[int] = field(default_factory=list)


class DistributedDMCDriver:
    """DMC over ``ranks`` in-process MPI ranks, each with its own clones."""

    def __init__(self, parts, ranks: int, rng: np.random.Generator,
                 timestep: float = 0.005, use_drift: bool = True,
                 version=None):
        from repro.core.version import VERSION_CONFIGS, CodeVersion
        from repro.drivers.crowd import clone_parts
        if ranks < 1:
            raise ValueError("need at least one rank")
        self.ranks = ranks
        self.comm = SimComm(ranks)
        cfg = VERSION_CONFIGS[version or CodeVersion.CURRENT]
        self.drivers: List[DMCDriver] = []
        for r in range(ranks):
            p = parts if r == 0 else clone_parts(parts)
            self.drivers.append(DMCDriver(
                p.electrons, p.twf, p.ham,
                np.random.default_rng(rng.integers(2 ** 63)),
                timestep=timestep, use_drift=use_drift,
                precision=cfg.precision))
        self.tau = timestep
        self.stats = DistributedStats()

    # -- the distributed generation loop -------------------------------------------
    def run(self, walkers_per_rank: int = 4, steps: int = 5) -> QMCResult:
        pops: List[List[Walker]] = [
            d.create_walkers(walkers_per_rank) for d in self.drivers]
        target = walkers_per_rank * self.ranks
        # Initial E_T from a real allreduce of local sums.
        sums = [sum(w.properties["local_energy"] for w in pop)
                for pop in pops]
        counts = [float(len(pop)) for pop in pops]
        tot_e = self.comm.allreduce(sums)[0]
        tot_n = self.comm.allreduce(counts)[0]
        self.stats.allreduces += 2
        e_trial = tot_e / tot_n
        e_best = e_trial

        result = QMCResult(method="DMC(distributed)", steps=steps)
        t0 = time.perf_counter()
        for _ in range(steps):
            # 1. local sweeps + reweighting on every rank.
            local_we = np.zeros(self.ranks)   # sum w * E_L
            local_w = np.zeros(self.ranks)    # sum w
            for r, drv in enumerate(self.drivers):
                for w in pops[r]:
                    el_old = w.properties["local_energy"]
                    drv.load_walker(w)
                    drv.sweep()
                    el_new = drv.store_walker(w)
                    w.age += 1
                    w.weight *= math.exp(
                        -self.tau * (0.5 * (el_old + el_new) - e_trial))
                    local_we[r] += w.weight * el_new
                    local_w[r] += w.weight
            # 2. global mixed estimator + E_T feedback (one allreduce of
            #    the packed [sum wE, sum w] pair, as production codes do).
            packed = [np.array([local_we[r], local_w[r]])
                      for r in range(self.ranks)]
            tot = self.comm.allreduce_array(packed)[0]
            self.stats.allreduces += 1
            e_mixed = float(tot[0] / tot[1]) if tot[1] > 0 else e_best
            result.energies.append(e_mixed)
            # 3. local branching.
            for r, drv in enumerate(self.drivers):
                pops[r] = drv._branch(pops[r])
            # 4. load balancing with real serialized walkers.
            before = [len(p) for p in pops]
            self.stats.per_generation_imbalance.append(
                max(before) - min(before))
            m0, b0 = self.comm.p2p_messages, self.comm.p2p_bytes
            pops = WalkerLoadBalancer.apply(pops, self.comm)
            moved = (self.comm.p2p_messages - m0)
            self.stats.messages += moved
            self.stats.bytes += self.comm.p2p_bytes - b0
            self.stats.migrated_walkers += moved
            # 5. trial-energy update.
            pop_now = sum(len(p) for p in pops)
            e_best = 0.25 * e_best + 0.75 * e_mixed
            feedback = 1.0 / (5.0 * self.tau)
            e_trial = e_best - feedback * math.log(
                max(pop_now, 1) / target)
            result.populations.append(pop_now)
            result.trial_energies.append(e_trial)
        result.elapsed = time.perf_counter() - t0
        moves = sum(d.n_moves for d in self.drivers)
        accepts = sum(d.n_accept for d in self.drivers)
        result.acceptance = accepts / moves if moves else 0.0
        result.extra["final_population"] = sum(len(p) for p in pops)
        result.extra["migrated_walkers"] = self.stats.migrated_walkers
        result.extra["comm_bytes"] = self.stats.bytes
        return result
