"""Host fingerprint embedded in every BENCH artifact.

Regression comparisons are only meaningful with the host in hand: a
throughput drop between artifacts from different machines is a machine
difference, not a regression.  :mod:`repro.bench.compare` prints both
fingerprints and widens nothing automatically — tolerance policy is the
caller's job (CI passes wide bands for shared runners).
"""

from __future__ import annotations

import os
import platform
import sys

import numpy as np


def host_fingerprint() -> dict:
    """Stable description of the machine and software stack."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or platform.machine(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
        "hostname": platform.node(),
    }
