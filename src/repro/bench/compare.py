"""Diff two BENCH artifacts with per-metric tolerance bands.

``python -m repro.bench.compare baseline.json candidate.json`` exits 0
when the candidate is within tolerance of the baseline and 1 on any
regression — the CI perf gate.

Three metric families, three bands:

* **throughput** (machine-dependent): candidate/baseline ratio must stay
  above ``--min-throughput-ratio``.  The default 0.55 trips on a 2x
  slowdown but shrugs off scheduler noise; CI passes a much wider band
  because shared runners are not the baseline machine.
* **hot-spot fractions** (mostly machine-independent): absolute drift of
  each category's fraction bounded by ``--frac-tol``, checked only for
  categories above ``--frac-floor`` in the baseline (tiny fractions are
  pure noise).
* **speedups** (dimensionless — the repo's headline claims): the
  candidate's speedup must stay above ``--min-speedup-ratio`` times the
  baseline's.
* **speedup floors** (absolute): a baseline workload may carry a
  ``speedup_floors`` object (e.g. the multi-core crowd gate
  ``{"w4_over_serial": 2.5}``); a candidate that *measured* the named
  speedup must meet the floor outright.  A candidate missing it — the
  bench runner's CPU guard skips worker counts the host cannot seat —
  passes by default; ``--enforce-floors`` makes absence itself a
  regression (for runners known to have the cores), except when the
  candidate workload *reported* the leg in its ``skipped`` list (the
  CPU guard, or the backend case's optional-dep guard on hosts without
  jax): a declared skip is never a floor failure.

A workload or version present in the baseline but missing from the
candidate is itself a regression (the suite silently lost coverage)
unless ``--allow-missing`` is given.  Exit codes: 0 ok, 1 regression,
2 usage/validation error.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.metrics.schema import validate_artifact


@dataclass
class Check:
    """One compared metric."""

    label: str
    baseline: float
    candidate: float
    detail: str
    ok: bool


def _load(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    errors = validate_artifact(doc)
    if errors:
        raise ValueError(f"{path} is not a valid BENCH artifact:\n  "
                         + "\n  ".join(errors))
    return doc


def compare_artifacts(baseline: dict, candidate: dict,
                      min_throughput_ratio: float = 0.55,
                      frac_tol: float = 0.25,
                      frac_floor: float = 0.05,
                      min_speedup_ratio: float = 0.4,
                      allow_missing: bool = False,
                      enforce_floors: bool = False) -> List[Check]:
    """All per-metric checks of candidate against baseline."""
    checks: List[Check] = []
    cand_workloads = {wl["name"]: wl for wl in candidate["workloads"]}
    for wl in baseline["workloads"]:
        name = wl["name"]
        cand_wl = cand_workloads.get(name)
        if cand_wl is None:
            checks.append(Check(f"{name}", 1.0, 0.0,
                                "workload missing from candidate",
                                ok=allow_missing))
            continue
        for label, base_entry in wl["versions"].items():
            cand_entry = cand_wl["versions"].get(label)
            prefix = f"{name}/{label}"
            if cand_entry is None:
                checks.append(Check(prefix, 1.0, 0.0,
                                    "version missing from candidate",
                                    ok=allow_missing))
                continue
            ratio = cand_entry["throughput"] / base_entry["throughput"]
            checks.append(Check(
                f"{prefix}/throughput", base_entry["throughput"],
                cand_entry["throughput"],
                f"ratio {ratio:.2f} (floor {min_throughput_ratio:.2f})",
                ok=ratio >= min_throughput_ratio))
            for cat, base_frac in base_entry["hotspots"].items():
                if base_frac < frac_floor:
                    continue
                cand_frac = cand_entry["hotspots"].get(cat, 0.0)
                drift = abs(cand_frac - base_frac)
                checks.append(Check(
                    f"{prefix}/hotspot/{cat}", base_frac, cand_frac,
                    f"|drift| {drift:.3f} (tol {frac_tol:.2f})",
                    ok=drift <= frac_tol))
        for sname, base_speedup in wl.get("speedups", {}).items():
            cand_speedup = cand_wl.get("speedups", {}).get(sname)
            if cand_speedup is None:
                checks.append(Check(f"{name}/speedup/{sname}", base_speedup,
                                    0.0, "speedup missing from candidate",
                                    ok=allow_missing))
                continue
            ratio = cand_speedup / base_speedup
            checks.append(Check(
                f"{name}/speedup/{sname}", base_speedup, cand_speedup,
                f"ratio {ratio:.2f} (floor {min_speedup_ratio:.2f})",
                ok=ratio >= min_speedup_ratio))
        for sname, floor in wl.get("speedup_floors", {}).items():
            cand_speedup = cand_wl.get("speedups", {}).get(sname)
            if cand_speedup is None:
                # A leg the runner *reported* skipping (parallel's CPU
                # guard, backend's optional-dep guard) is excused even
                # under --enforce-floors: the host could not measure it
                # and said so in the artifact.
                skipped = cand_wl.get("skipped") or []
                if skipped:
                    checks.append(Check(
                        f"{name}/floor/{sname}", floor, 0.0,
                        f"not measured (skipped: {', '.join(skipped)})",
                        ok=True))
                    continue
                checks.append(Check(
                    f"{name}/floor/{sname}", floor, 0.0,
                    "not measured" if not enforce_floors
                    else "floor speedup missing from candidate",
                    ok=not enforce_floors))
                continue
            checks.append(Check(
                f"{name}/floor/{sname}", floor, cand_speedup,
                f"absolute floor {floor:.2f}",
                ok=cand_speedup >= floor))
    return checks


def format_report(checks: List[Check], baseline: dict,
                  candidate: dict) -> str:
    lines = [
        f"baseline : tag={baseline['tag']} "
        f"host={baseline['host'].get('hostname', '?')}",
        f"candidate: tag={candidate['tag']} "
        f"host={candidate['host'].get('hostname', '?')}",
        "",
        f"  {'metric':<44s} {'baseline':>12s} {'candidate':>12s}  verdict",
    ]
    for c in checks:
        verdict = "ok" if c.ok else "REGRESSION"
        lines.append(f"  {c.label:<44s} {c.baseline:12.4g} "
                     f"{c.candidate:12.4g}  {verdict}  [{c.detail}]")
    bad = sum(1 for c in checks if not c.ok)
    lines.append("")
    lines.append(f"{len(checks)} checks, {bad} regression(s)")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Diff two BENCH artifacts; nonzero exit on regression.")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument("--min-throughput-ratio", type=float, default=0.55,
                        help="minimum candidate/baseline throughput ratio "
                             "(default 0.55: a 2x slowdown fails)")
    parser.add_argument("--frac-tol", type=float, default=0.25,
                        help="max absolute drift of a hotspot fraction")
    parser.add_argument("--frac-floor", type=float, default=0.05,
                        help="ignore baseline fractions below this")
    parser.add_argument("--min-speedup-ratio", type=float, default=0.4,
                        help="minimum candidate/baseline speedup ratio")
    parser.add_argument("--allow-missing", action="store_true",
                        help="missing workloads/versions are not regressions")
    parser.add_argument("--enforce-floors", action="store_true",
                        help="a speedup_floors entry the candidate did not "
                             "measure is itself a regression (use on "
                             "runners known to have the cores)")
    args = parser.parse_args(argv)
    try:
        baseline = _load(args.baseline)
        candidate = _load(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    checks = compare_artifacts(
        baseline, candidate,
        min_throughput_ratio=args.min_throughput_ratio,
        frac_tol=args.frac_tol, frac_floor=args.frac_floor,
        min_speedup_ratio=args.min_speedup_ratio,
        allow_missing=args.allow_missing,
        enforce_floors=args.enforce_floors)
    print(format_report(checks, baseline, candidate))
    return 1 if any(not c.ok for c in checks) else 0


if __name__ == "__main__":
    raise SystemExit(main())
