"""Workload suites for the ``python -m repro.bench`` CLI.

``BENCH_SCALE`` is the canonical home of the reduced scales the
per-figure benchmarks under ``benchmarks/`` also use (``harness.py``
imports it from here): each keeps a pure-Python Ref run to seconds while
preserving the workload's species mix, density and code paths.

Two kinds of cases:

* ``system`` — a full workload (``QmcSystem``) run at reduced scale
  through the real VMC driver, once per code version (Ref / Ref+MP /
  Current a.k.a. the SoA+OTF build).
* ``batched`` — the Jastrow-level differential pair: the genuine
  per-walker machinery (``ref``) vs the walker-batched driver
  (``batched``) on the identical :class:`JastrowSystemSpec`, the repo's
  headline ~18x walker-throughput win.
* ``parallel`` — multi-core crowd scaling: the same batched workload
  through :class:`~repro.parallel.crowds.ParallelCrowdDriver` at each
  worker count in ``workers`` (0 = in-process serial).  Worker counts
  needing more CPUs than the host has are skipped (the CPU guard), and
  the runner asserts the energy traces are bitwise identical across all
  counts that did run.
* ``nlpp`` — the virtual-particle NLPP pair on a determinant+Jastrow
  workload: the scalar temp-move oracle (``scalar``) vs the fused
  slab engine (``batched``) on identical walker state and rotation,
  with a ``speedup_floors`` entry gating the batched-over-scalar win.
* ``streaming`` — the trace-pipeline overhead pair: the identical
  batched workload with (``streaming``) and without (``memory``) the
  per-generation binary trace + online reblocker attached, interleaved
  repetitions, energies asserted bitwise equal.  ``floor`` gates
  ``streaming_over_memory`` (0.95 = at most 5% overhead).
* ``backend`` — per-kernel micro-benchmarks of the kernel-backend
  registry (docs/backends.md): every registered hot kernel timed under
  the ``numpy`` backend and, when importable, the ``jax`` backend on
  workload-shaped inputs.  Reports ``jax_over_numpy`` per kernel and in
  aggregate; on hosts without jax the leg lands in ``skipped`` (the
  same pattern as the parallel CPU guard) and only the floors entry is
  committed, to be enforced by the CI jax leg that can measure it.
* ``sweep`` — the dispatch-amortization pair of the fused per-electron
  move pipeline (docs/sweep_fusion.md): the retained pre-fusion loop
  oracle (``loop``, ~14 backend dispatches per electron) vs the fused
  ``sweep_run`` pipeline kernel (``fused``, one dispatch per sweep) on
  the identical batched workload, energies and accept streams asserted
  bitwise equal in-runner; a ``jax`` leg runs the whole-sweep jit when
  importable (skipped otherwise, like the backend kind).  Reports the
  measured backend dispatches per electron for every leg and gates
  ``fused_over_loop`` with ``floor``.
* ``spline_memory`` — the shared-slab + tiled-vgh pair
  (docs/spline_memory.md): the flat per-channel 3D vgh evaluation
  (``flat``) vs the tile-blocked kernel (``tiled``) on one fitted
  orbital table, results asserted bitwise equal, ``floor`` gating
  ``tiled_over_flat``; plus per-worker coefficient-table RSS measured
  by forking ``workers[0]`` children per strategy (private copy vs
  :class:`~repro.splines.slab.SharedCoefSlab` attach), reported
  against the :class:`~repro.memory.model.MemoryModel` prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Scales keeping pure-Python Ref runs to seconds while preserving the
#: workload's species mix, density and code paths.
BENCH_SCALE: Dict[str, float] = {
    "Graphite": 0.25,    # 4 cells  -> 64 electrons
    "Be-64": 0.125,      # 4 cells  -> 32 electrons
    "NiO-32": 0.25,      # 2 cells  -> 96 electrons
    "NiO-64": 0.25,      # 4 cells  -> 192 electrons
}


@dataclass(frozen=True)
class BenchCase:
    """One row of a bench suite."""

    name: str
    kind: str    # "system" | "batched" | "parallel" | "nlpp" | "streaming"
                 # | "backend"
    versions: Tuple[str, ...]
    # system-kind knobs
    workload: str = ""
    scale: float = 1.0
    walkers: int = 1
    # batched-kind knobs (parallel reuses n / nwalkers)
    n: int = 0
    nwalkers: int = 0
    # parallel-kind knobs: worker-process counts (0 = in-process serial)
    workers: Tuple[int, ...] = ()
    # nlpp-kind knobs: quadrature size and the batched-over-scalar
    # speedup floor (0 = report only, don't gate)
    npoints: int = 12
    floor: float = 0.0
    # spline_memory-kind knobs: orbital tile width and logical grid
    # points per axis of the fitted table (0 = kind-specific default)
    tile: int = 0
    grid: int = 0
    # shared
    steps: int = 2
    seed: int = 21

    def __post_init__(self):
        if self.kind not in ("system", "batched", "parallel", "nlpp",
                             "streaming", "backend", "spline_memory",
                             "sweep"):
            raise ValueError(f"unknown bench kind {self.kind!r}")


#: The CI / acceptance suite: one reduced full-system workload across
#: code versions plus the batched-vs-per-walker pair.  Runs in well
#: under a minute on a laptop.
QUICK_SUITE = (
    BenchCase(name="Graphite-x0.125", kind="system",
              versions=("ref", "current"),
              workload="Graphite", scale=0.125, walkers=2, steps=2),
    BenchCase(name="jastrow-N32-W16", kind="batched",
              versions=("ref", "batched"), n=32, nwalkers=16, steps=2),
    BenchCase(name="crowds-N32-W32", kind="parallel",
              versions=("serial", "w2", "w4"),
              n=32, nwalkers=32, workers=(0, 2, 4), steps=2),
    BenchCase(name="nlpp-NiO32-x0.25", kind="nlpp",
              versions=("scalar", "batched"),
              workload="NiO-32", scale=BENCH_SCALE["NiO-32"],
              npoints=12, floor=3.0, steps=2),
    BenchCase(name="streaming-N32-W16", kind="streaming",
              versions=("memory", "streaming"),
              n=32, nwalkers=16, steps=6, floor=0.95),
    BenchCase(name="backend-NiO32-N96-W8", kind="backend",
              versions=("numpy", "jax"),
              workload="NiO-32", n=96, nwalkers=8, steps=3, floor=0.5),
    BenchCase(name="backend-Be64-N32-W16", kind="backend",
              versions=("numpy", "jax"),
              workload="Be-64", n=32, nwalkers=16, steps=3, floor=0.5),
    BenchCase(name="spline-mem-M256-W32", kind="spline_memory",
              versions=("flat", "tiled"),
              n=256, nwalkers=32, grid=16, tile=64, workers=(4,),
              steps=3, floor=1.2),
    BenchCase(name="sweep-N24-W8", kind="sweep",
              versions=("loop", "fused", "jax"),
              n=24, nwalkers=8, steps=3, floor=1.15),
)

#: The fuller trajectory: two chemistries, all three versions, and a
#: larger batched crowd.
FULL_SUITE = (
    BenchCase(name="Graphite-x0.25", kind="system",
              versions=("ref", "ref+mp", "current"),
              workload="Graphite", scale=BENCH_SCALE["Graphite"],
              walkers=2, steps=2),
    BenchCase(name="NiO-32-x0.25", kind="system",
              versions=("ref", "current"),
              workload="NiO-32", scale=BENCH_SCALE["NiO-32"],
              walkers=2, steps=2),
    BenchCase(name="jastrow-N32-W32", kind="batched",
              versions=("ref", "batched"), n=32, nwalkers=32, steps=2),
    BenchCase(name="nlpp-NiO32-x0.25", kind="nlpp",
              versions=("scalar", "batched"),
              workload="NiO-32", scale=BENCH_SCALE["NiO-32"],
              npoints=12, floor=3.0, steps=3),
)

#: Sub-second smoke suite for the test suite itself.
SMOKE_SUITE = (
    BenchCase(name="Graphite-x0.0625", kind="system",
              versions=("ref", "current"),
              workload="Graphite", scale=0.0625, walkers=1, steps=1),
    BenchCase(name="jastrow-N12-W4", kind="batched",
              versions=("ref", "batched"), n=12, nwalkers=4, steps=1),
    BenchCase(name="crowds-N8-W4", kind="parallel",
              versions=("serial", "w1"),
              n=8, nwalkers=4, workers=(0, 1), steps=1),
    BenchCase(name="nlpp-NiO32-x0.125", kind="nlpp",
              versions=("scalar", "batched"),
              workload="NiO-32", scale=0.125, npoints=6, steps=1),
    BenchCase(name="streaming-N12-W4", kind="streaming",
              versions=("memory", "streaming"),
              n=12, nwalkers=4, steps=2),
    BenchCase(name="spline-mem-M16-W8", kind="spline_memory",
              versions=("flat", "tiled"),
              n=16, nwalkers=8, grid=8, tile=4, workers=(2,), steps=1),
    BenchCase(name="sweep-N10-W4", kind="sweep",
              versions=("loop", "fused"), n=10, nwalkers=4, steps=1),
)

#: Multi-core crowd scaling (``make bench-parallel``): one sized
#: workload, workers = 0/1/2/4.  Per-walker compute dominates at this
#: size, so the speedup-vs-workers curve reflects crowd parallelism
#: rather than sync overhead.
PARALLEL_SUITE = (
    BenchCase(name="crowds-N48-W64", kind="parallel",
              versions=("serial", "w1", "w2", "w4"),
              n=48, nwalkers=64, workers=(0, 1, 2, 4), steps=2),
)

#: Backend-only suite (``make bench-backend``): the two workload-shaped
#: kernel micro-benchmarks, at more repetitions than the quick suite.
BACKEND_SUITE = (
    BenchCase(name="backend-NiO32-N96-W8", kind="backend",
              versions=("numpy", "jax"),
              workload="NiO-32", n=96, nwalkers=8, steps=7, floor=0.5),
    BenchCase(name="backend-Be64-N32-W16", kind="backend",
              versions=("numpy", "jax"),
              workload="Be-64", n=32, nwalkers=16, steps=7, floor=0.5),
)

#: Spline-memory suite (``make bench-spline``): the shared-slab +
#: tiled-vgh gate at more repetitions, plus a larger-table sweep.
SPLINE_SUITE = (
    BenchCase(name="spline-mem-M256-W32", kind="spline_memory",
              versions=("flat", "tiled"),
              n=256, nwalkers=32, grid=16, tile=64, workers=(4,),
              steps=5, floor=1.2),
    BenchCase(name="spline-mem-M512-W32", kind="spline_memory",
              versions=("flat", "tiled"),
              n=512, nwalkers=32, grid=16, tile=64, workers=(4,),
              steps=3, floor=1.2),
)

SUITES = {"quick": QUICK_SUITE, "full": FULL_SUITE, "smoke": SMOKE_SUITE,
          "parallel": PARALLEL_SUITE, "backend": BACKEND_SUITE,
          "spline": SPLINE_SUITE}
