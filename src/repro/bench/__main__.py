"""CLI: ``python -m repro.bench [--quick] [--tag TAG] [--out DIR]``.

Runs a bench suite across code versions and writes a schema-validated
``BENCH_<tag>.json`` artifact.  Arm ``REPRO_METRICS=1`` to embed the
hierarchical timer tree in the artifact.  Exit status is 0 on success,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.bench.runner import format_summary, run_suite, write_artifact
from repro.bench.suite import SUITES


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the reduced-scale workload suite across code "
                    "versions and emit a BENCH_<tag>.json artifact.")
    parser.add_argument("--suite", choices=sorted(SUITES), default="full",
                        help="which suite to run (default: full)")
    parser.add_argument("--quick", action="store_true",
                        help="shorthand for --suite quick")
    parser.add_argument("--tag", default=None,
                        help="artifact tag (default: local-<timestamp>)")
    parser.add_argument("--out", default=".", metavar="DIR",
                        help="directory for BENCH_<tag>.json (default: .)")
    parser.add_argument("--list", action="store_true",
                        help="print the suites and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name, cases in sorted(SUITES.items()):
            print(f"{name}:")
            for case in cases:
                print(f"  {case.name} [{case.kind}] "
                      f"versions={','.join(case.versions)}")
        return 0

    suite = "quick" if args.quick else args.suite
    tag = args.tag or f"local-{time.strftime('%Y%m%d-%H%M%S')}"
    doc = run_suite(suite, tag, progress=lambda msg: print(f"[bench] {msg}",
                                                           file=sys.stderr))
    path = write_artifact(doc, args.out)
    print(format_summary(doc))
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
