"""repro.bench — machine-readable performance trajectory.

``python -m repro.bench`` runs the reduced-scale workload suite across
code versions (Ref / Ref+MP / Current, plus the per-walker-vs-batched
pair) and emits a schema-validated ``BENCH_<tag>.json`` artifact;
``python -m repro.bench.compare`` diffs two artifacts with per-metric
tolerance bands and exits nonzero on regression.  See
docs/observability.md.
"""

from repro.bench.suite import BENCH_SCALE, SUITES, BenchCase
from repro.bench.fingerprint import host_fingerprint

__all__ = ["BENCH_SCALE", "SUITES", "BenchCase", "host_fingerprint"]
