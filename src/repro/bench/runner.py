"""Execute a bench suite and assemble the BENCH artifact document.

Every case runs each of its code versions through the real drivers with
the kernel profiler armed, so the artifact carries measured hot-spot
fractions (the paper's Fig. 2 taxonomy), throughput, and a measured
per-walker memory footprint.  When the global metrics registry is armed
(``REPRO_METRICS=1``) the artifact additionally embeds the hierarchical
scope tree of the whole suite run.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from repro.bench.fingerprint import host_fingerprint
from repro.bench.suite import SUITES, BenchCase
from repro.metrics.registry import METRICS
from repro.metrics.schema import BENCH_SCHEMA_VERSION, validate_artifact
from repro.profiling.profiler import PROFILER

#: artifact version label -> CodeVersion value (resolved lazily to keep
#: import costs out of ``repro.bench.compare``)
_SYSTEM_VERSIONS = {"ref": "ref", "ref+mp": "ref+mp", "current": "current"}


def _version_entry(throughput: float, seconds_per_step: float,
                   total_seconds: float, hotspots: Dict[str, float],
                   peak_walker_bytes: float) -> dict:
    return {
        "throughput": float(throughput),
        "seconds_per_step": float(seconds_per_step),
        "total_seconds": float(total_seconds),
        "hotspots": {k: float(v) for k, v in hotspots.items()},
        "peak_walker_bytes": float(peak_walker_bytes),
    }


def _system_walker_bytes(parts, precision) -> int:
    """Measured per-walker footprint: positions + registered buffer."""
    from repro.particles.walker import Walker
    w = Walker.from_positions(parts.electrons.R.copy(),
                              dtype=precision.value_dtype)
    parts.electrons.load_walker(w)
    parts.twf.evaluate_log(parts.electrons)
    parts.twf.register_data(parts.electrons, w.buffer)
    return int(w.message_nbytes())


def run_system_case(case: BenchCase) -> dict:
    """Run one full-workload case across its code versions."""
    from repro.core.system import QmcSystem, run_vmc
    from repro.core.version import CodeVersion, VERSION_CONFIGS

    sys_ = QmcSystem.from_workload(case.workload, scale=case.scale,
                                   seed=case.seed, with_nlpp=False)
    versions: Dict[str, dict] = {}
    for label in case.versions:
        version = CodeVersion(_SYSTEM_VERSIONS[label])
        parts = sys_.build(version)
        res = run_vmc(sys_, version, walkers=case.walkers, steps=case.steps,
                      parts=parts, profile=True, seed=case.seed + 1)
        versions[label] = _version_entry(
            throughput=res.throughput,
            seconds_per_step=res.elapsed / case.steps,
            total_seconds=res.elapsed,
            hotspots=res.profile.normalized(),
            peak_walker_bytes=_system_walker_bytes(
                parts, VERSION_CONFIGS[version].precision),
        )
    out = {
        "name": case.name, "kind": "system", "workload": case.workload,
        "scale": case.scale, "steps": case.steps, "walkers": case.walkers,
        "n_electrons": parts.n_electrons, "versions": versions,
        "speedups": {},
    }
    if "ref" in versions and "current" in versions:
        out["speedups"]["current_over_ref"] = (
            versions["current"]["throughput"] / versions["ref"]["throughput"])
    return out


def run_batched_case(case: BenchCase) -> dict:
    """Run the per-walker-vs-batched differential pair on one spec."""
    from repro.batched import (BatchedCrowdDriver, JastrowSystemSpec,
                               run_reference)
    from repro.particles.walker import Walker
    from repro.precision.policy import FULL

    spec = JastrowSystemSpec(n=case.n, seed=7, aa_flavor="otf")
    # -- per-walker reference --------------------------------------------------
    PROFILER.start_run()
    t0 = time.perf_counter()
    run_reference(spec, case.nwalkers, case.steps, case.seed, use_drift=True)
    ref_elapsed = time.perf_counter() - t0
    ref_prof = PROFILER.stop_run(f"{case.name}/ref")
    P, twf, _ = spec.build_scalar()
    w = Walker.from_positions(spec.base_positions, dtype=FULL.value_dtype)
    P.load_walker(w)
    twf.evaluate_log(P)
    twf.register_data(P, w.buffer)
    ref_walker_bytes = int(w.message_nbytes())
    # -- batched ---------------------------------------------------------------
    drv = BatchedCrowdDriver(spec, case.nwalkers, case.seed, use_drift=True)
    PROFILER.start_run()
    t0 = time.perf_counter()
    drv.run(case.steps)
    bat_elapsed = time.perf_counter() - t0
    bat_prof = PROFILER.stop_run(f"{case.name}/batched")
    bat_walker_bytes = (
        drv.batch.R.nbytes + drv.batch.Rsoa.nbytes
        + sum(t.storage_bytes for t in drv.tables)) / case.nwalkers
    steps_walkers = case.steps * case.nwalkers
    versions = {
        "ref": _version_entry(
            throughput=steps_walkers / ref_elapsed,
            seconds_per_step=ref_elapsed / case.steps,
            total_seconds=ref_elapsed,
            hotspots=ref_prof.normalized(),
            peak_walker_bytes=ref_walker_bytes),
        "batched": _version_entry(
            throughput=steps_walkers / bat_elapsed,
            seconds_per_step=bat_elapsed / case.steps,
            total_seconds=bat_elapsed,
            hotspots=bat_prof.normalized(),
            peak_walker_bytes=bat_walker_bytes),
    }
    return {
        "name": case.name, "kind": "batched", "n_electrons": case.n,
        "steps": case.steps, "walkers": case.nwalkers, "versions": versions,
        "speedups": {"batched_over_ref": versions["batched"]["throughput"]
                     / versions["ref"]["throughput"]},
    }


def run_parallel_case(case: BenchCase, progress=None) -> dict:
    """Run the multi-core crowd-scaling case across its worker counts.

    Worker counts that would oversubscribe the host (``workers + 1``
    processes: the parent coordinates while workers compute) are skipped
    and reported in the workload's ``skipped`` list — the CPU guard that
    keeps the case meaningful on small CI runners.  Energy traces must
    come out bitwise identical across every count that ran (the
    determinism contract of docs/parallel_crowds.md); a mismatch fails
    the whole bench run.

    Kernel-level hot-spot taxonomy is not meaningful from the parent
    process (the kernels run inside the workers), so entries carry a
    single ``crowd`` category; the per-scope breakdown lives in the
    metrics tree when ``REPRO_METRICS=1`` is armed.
    """
    from repro.batched import JastrowSystemSpec
    from repro.parallel.crowds import ParallelCrowdDriver
    from repro.parallel.shm import _layout

    ncpu = os.cpu_count() or 1
    spec = JastrowSystemSpec(n=case.n, seed=7)
    _, state_bytes = _layout(case.nwalkers, case.n)
    versions: Dict[str, dict] = {}
    skipped = []
    traces: Dict[str, tuple] = {}
    for nworkers in case.workers:
        label = "serial" if nworkers == 0 else f"w{nworkers}"
        if nworkers + 1 > ncpu:
            skipped.append(label)
            if progress is not None:
                progress(f"  {case.name}: skipping {label} "
                         f"(needs {nworkers + 1} CPUs, host has {ncpu})")
            continue
        drv = ParallelCrowdDriver(spec, case.nwalkers, case.seed,
                                  workers=nworkers, timestep=0.3)
        try:
            res = drv.run(case.steps, mode="vmc")
        finally:
            drv.close()
        traces[label] = tuple(res.energies)
        entry = _version_entry(
            throughput=res.throughput,
            seconds_per_step=res.elapsed / case.steps,
            total_seconds=res.elapsed,
            hotspots={"crowd": 1.0},
            peak_walker_bytes=state_bytes / case.nwalkers)
        entry["workers"] = nworkers
        entry["setup_seconds"] = float(res.extra.get("setup_seconds", 0.0))
        versions[label] = entry
    if len(set(traces.values())) > 1:
        raise RuntimeError(
            f"{case.name}: energy traces are NOT bitwise identical across "
            f"worker counts {sorted(traces)} — determinism regression")
    speedups = {}
    serial = versions.get("serial")
    if serial is not None:
        for label, entry in versions.items():
            if label != "serial":
                speedups[f"{label}_over_serial"] = (
                    entry["throughput"] / serial["throughput"])
    return {
        "name": case.name, "kind": "parallel", "n_electrons": case.n,
        "steps": case.steps, "walkers": case.nwalkers,
        "versions": versions, "speedups": speedups, "skipped": skipped,
        "trace_bitwise_identical": bool(traces),
    }


def run_nlpp_case(case: BenchCase) -> dict:
    """Time the scalar temp-move NLPP oracle vs the fused
    virtual-particle engine on identical walker state and rotations.

    Both engines are keyed on the same stateless quadrature-rotation
    stream, so their V_NL values must agree to accumulation precision —
    a silent-wrong fast path fails the whole bench run.  Cases with a
    ``floor`` emit a ``speedup_floors`` entry the compare gate enforces.
    """
    import numpy as np

    from repro.hamiltonian.nlpp import NonLocalPP, QuadratureRotations
    from repro.precision.policy import FULL
    from repro.workloads import get_workload
    from repro.workloads.builder import build_system

    parts = build_system(get_workload(case.workload), scale=case.scale,
                         seed=case.seed, with_nlpp=False)
    P, twf = parts.electrons, parts.twf
    P.update_tables()
    twf.evaluate_log(P)
    rcut = min(1.4, 0.9 * parts.lattice.wigner_seitz_radius)
    term = NonLocalPP(parts.ions, range(parts.ions.n), l=1, v0=0.5,
                      width=0.8, rcut=rcut, npoints=case.npoints,
                      table_index=1)
    term.use_rotations(QuadratureRotations(case.seed + 1))
    walker_bytes = _system_walker_bytes(parts, FULL)

    def timed(fn, label):
        PROFILER.start_run()
        t0 = time.perf_counter()
        vals = []
        for s in range(case.steps):
            term.set_walker(0, s + 1)  # same rotation key for both engines
            vals.append(fn(P, twf))
        elapsed = time.perf_counter() - t0
        prof = PROFILER.stop_run(f"{case.name}/{label}")
        return vals, elapsed, prof

    scalar_vals, scalar_s, scalar_prof = timed(term.evaluate_reference,
                                               "scalar")
    vp_vals, vp_s, vp_prof = timed(term.evaluate, "batched")
    tol = 1e4 * float(np.finfo(np.float64).eps)
    for v_vp, v_ref in zip(vp_vals, scalar_vals):
        if abs(v_vp - v_ref) > tol * max(1.0, abs(v_ref)):
            raise RuntimeError(
                f"{case.name}: batched NLPP diverged from the scalar "
                f"oracle ({v_vp!r} vs {v_ref!r}) — parity regression")
    versions = {
        "scalar": _version_entry(
            throughput=case.steps / scalar_s,
            seconds_per_step=scalar_s / case.steps,
            total_seconds=scalar_s,
            hotspots=scalar_prof.normalized(),
            peak_walker_bytes=walker_bytes),
        "batched": _version_entry(
            throughput=case.steps / vp_s,
            seconds_per_step=vp_s / case.steps,
            total_seconds=vp_s,
            hotspots=vp_prof.normalized(),
            peak_walker_bytes=walker_bytes),
    }
    out = {
        "name": case.name, "kind": "nlpp", "workload": case.workload,
        "scale": case.scale, "steps": case.steps, "walkers": 1,
        "n_electrons": parts.n_electrons, "npoints": case.npoints,
        "versions": versions,
        "speedups": {"batched_over_scalar": scalar_s / vp_s},
    }
    if case.floor > 0:
        out["speedup_floors"] = {"batched_over_scalar": float(case.floor)}
    return out


def run_streaming_case(case: BenchCase) -> dict:
    """Measure the trace-pipeline overhead on the batched driver.

    Repetitions interleave the in-memory and streaming variants
    (alternating A/B so warm-up and host drift hit both equally) and
    each variant keeps its best time.  The streamed run writes a real
    per-generation binary trace (flush_every=1, the production cadence)
    and feeds the online reblocker; its energy trace must come out
    bitwise equal to the in-memory run's — streaming observes, never
    perturbs.  Cases with a ``floor`` gate ``streaming_over_memory``
    (0.95 = at most 5% overhead).
    """
    import tempfile

    from repro.batched import BatchedCrowdDriver, JastrowSystemSpec
    from repro.output.stream import StreamSet

    spec = JastrowSystemSpec(n=case.n, seed=7)
    reps = 3
    times = {"memory": [], "streaming": []}
    profs = {}
    energies = {}
    with tempfile.TemporaryDirectory() as tmp:
        for rep in range(reps):
            for label in ("memory", "streaming"):
                drv = BatchedCrowdDriver(spec, case.nwalkers, case.seed)
                streams = None
                if label == "streaming":
                    streams = StreamSet(
                        trace_path=os.path.join(tmp, f"rep{rep}.trace"),
                        meta={"bench": case.name})
                PROFILER.start_run()
                t0 = time.perf_counter()
                res = drv.run(case.steps, streams=streams)
                if streams is not None:
                    streams.close()  # the final flush is part of the cost
                times[label].append(time.perf_counter() - t0)
                profs[label] = PROFILER.stop_run(f"{case.name}/{label}")
                energies[label] = tuple(res.energies)
            if energies["streaming"] != energies["memory"]:
                raise RuntimeError(
                    f"{case.name}: streamed run's energies diverged from "
                    f"the in-memory run — streaming perturbed the walk")
        walker_bytes = (drv.batch.R.nbytes + drv.batch.Rsoa.nbytes
                        + sum(t.storage_bytes for t in drv.tables)
                        ) / case.nwalkers
    steps_walkers = case.steps * case.nwalkers
    best = {label: min(ts) for label, ts in times.items()}
    versions = {
        label: _version_entry(
            throughput=steps_walkers / best[label],
            seconds_per_step=best[label] / case.steps,
            total_seconds=best[label],
            hotspots=profs[label].normalized(),
            peak_walker_bytes=walker_bytes)
        for label in ("memory", "streaming")
    }
    out = {
        "name": case.name, "kind": "streaming", "n_electrons": case.n,
        "steps": case.steps, "walkers": case.nwalkers, "versions": versions,
        "speedups": {"streaming_over_memory": best["memory"]
                     / best["streaming"]},
    }
    if case.floor > 0:
        out["speedup_floors"] = {"streaming_over_memory": float(case.floor)}
    return out


#: kernels timed by the ``backend`` bench kind — the array-shaped subset
#: of repro.backend.base.KERNEL_NAMES (the scalar det_ratio and the 1D
#: value-only kernel are dominated by call overhead, not kernel work)
_BACKEND_BENCH_KERNELS = (
    "aa_row", "ab_row", "aa_pairs", "ab_pairs", "functor_v", "functor_vgl",
    "bspline1d_vgl", "spline3d_v", "spline3d_vgl", "det_ratios_vp",
    "exp_rows", "accept_mask",
)


def _backend_kernel_inputs(n: int, nwalkers: int, seed: int):
    """Workload-shaped inputs for every benched kernel.

    Sizes mirror the batched driver's call sites: W walkers of n
    electrons in a cubic cell scaled to roughly constant density, with
    n/4 ions, n/2 orbitals and a Jastrow cutoff inside the cell.
    Returns ``(inputs, input_bytes)``.
    """
    import numpy as np

    from repro.jastrow.functor import BsplineFunctor
    from repro.lattice.cell import CrystalLattice
    from repro.splines.bspline3d import BSpline3D

    rng = np.random.default_rng(seed)
    W = nwalkers
    a = 6.0 * (n / 32.0) ** (1.0 / 3.0)
    lattice = CrystalLattice.cubic(a)
    ns = max(4, n // 4)
    norb = max(4, n // 2)
    nvp = 12
    f = BsplineFunctor.from_shape(rcut=min(2.5, 0.45 * a), cusp=-0.25)
    s = f.spline
    sp = BSpline3D.fit(rng.normal(size=(8, 8, 8, norb)),
                       np.linalg.inv(np.eye(3) * a), dtype=np.float64)
    soa = rng.uniform(0, a, (W, 3, n))
    rk = rng.uniform(0, a, (W, 3))
    inputs = {
        "aa_row": (soa, rk, lattice, 0),
        "ab_row": (rng.uniform(0, a, (3, ns)), rk, lattice),
        "aa_pairs": (rng.uniform(0, a, (W, n, 3)), lattice),
        "ab_pairs": (rng.uniform(0, a, (ns, 3)),
                     rng.uniform(0, a, (W, n, 3)), lattice),
        "functor_v": (s.coefs, s.x0, s.h, s.n, f.rcut,
                      rng.uniform(0, 1.5 * f.rcut, (W, n))),
        "functor_vgl": (s.coefs, s.x0, s.h, s.n, f.rcut,
                        rng.uniform(0, 1.5 * f.rcut, (W, n))),
        "bspline1d_vgl": (s.coefs, s.x0, s.h, s.n,
                          rng.uniform(0, f.rcut, (W * n,))),
        "spline3d_v": (sp.coefs, sp.cell_inverse, (sp.nx, sp.ny, sp.nz),
                       rng.uniform(0, a, (W, 3))),
        "spline3d_vgl": (sp.coefs, sp.cell_inverse, (sp.nx, sp.ny, sp.nz),
                         rng.uniform(0, a, (W, 3))),
        "det_ratios_vp": (rng.normal(size=(nvp, n)),
                          rng.normal(size=(n, nvp))),
        "exp_rows": (rng.normal(scale=0.3, size=W),),
        "accept_mask": (rng.normal(loc=0.9, scale=0.3, size=W),
                        rng.normal(scale=0.3, size=W),
                        rng.uniform(size=W)),
    }
    input_bytes = sum(
        arg.nbytes for args in inputs.values() for arg in args
        if hasattr(arg, "nbytes"))
    return inputs, input_bytes


def _force(out) -> None:
    """Materialize a kernel result (drains jax's async dispatch queue the
    same way the real call sites do: a host coercion)."""
    import numpy as np
    if isinstance(out, tuple):
        for o in out:
            np.asarray(o)
    else:
        np.asarray(out)


def run_backend_case(case: BenchCase) -> dict:
    """Per-kernel micro-benchmarks of the kernel-backend registry.

    Every kernel in ``_BACKEND_BENCH_KERNELS`` runs under each requested
    backend on identical inputs: one untimed warm-up call (jit
    compilation lands there), then ``case.steps`` timed repetitions,
    best-of kept.  A backend the host cannot construct (jax not
    installed) lands in ``skipped`` — the same report-don't-fail pattern
    as the parallel case's CPU guard — and a ``floor`` case emits a
    ``speedup_floors`` entry for ``jax_over_numpy`` that the compare
    gate enforces only on hosts that measured it (the CI jax leg).
    """
    from repro.backend import BackendUnavailableError, get_backend

    inputs, input_bytes = _backend_kernel_inputs(case.n, case.nwalkers,
                                                 case.seed)
    versions: Dict[str, dict] = {}
    skipped = []
    kernel_best: Dict[str, Dict[str, float]] = {}
    for label in case.versions:
        try:
            backend = get_backend(label)
        except BackendUnavailableError:
            skipped.append(label)
            continue
        best: Dict[str, float] = {}
        with backend.scope():
            for kname in _BACKEND_BENCH_KERNELS:
                args = inputs[kname]
                fn = getattr(backend, kname)
                _force(fn(*args))  # warm-up: jit tracing + compilation
                times = []
                for _ in range(case.steps):
                    t0 = time.perf_counter()
                    _force(fn(*args))
                    times.append(time.perf_counter() - t0)
                best[kname] = min(times)
        total = sum(best.values())
        versions[label] = _version_entry(
            throughput=len(best) * case.nwalkers / total,
            seconds_per_step=total / len(best),
            total_seconds=total,
            hotspots={k: v / total for k, v in best.items()},
            peak_walker_bytes=input_bytes / case.nwalkers)
        kernel_best[label] = best
    speedups: Dict[str, float] = {}
    if "numpy" in kernel_best and "jax" in kernel_best:
        np_best, jx_best = kernel_best["numpy"], kernel_best["jax"]
        for kname in _BACKEND_BENCH_KERNELS:
            speedups[f"jax_over_numpy:{kname}"] = (
                np_best[kname] / jx_best[kname])
        speedups["jax_over_numpy"] = (
            sum(np_best.values()) / sum(jx_best.values()))
    out = {
        "name": case.name, "kind": "backend", "workload": case.workload,
        "n_electrons": case.n, "steps": case.steps, "walkers": case.nwalkers,
        "versions": versions, "speedups": speedups, "skipped": skipped,
    }
    if case.floor > 0:
        out["speedup_floors"] = {"jax_over_numpy": float(case.floor)}
    return out


class _CountingBackend:
    """Proxy backend that counts dispatch crossings of the kernel seam.

    Every registered kernel method increments ``dispatches`` at call
    depth 0 and delegates to the wrapped backend.  Nested crossings are
    not double-counted, and a delegated pipeline kernel (``sweep_run``)
    re-scopes to the *inner* backend for its body, so the fused leg
    counts exactly one dispatch per sweep while the loop leg counts
    every per-electron table/functor/exp/accept call routed through
    ``active()`` under this proxy's scope.
    """

    def __init__(self, inner):
        from repro.backend.base import KERNEL_NAMES
        self._inner = inner
        self.name = inner.name
        self.exact_match = inner.exact_match
        self.dispatches = 0
        self._depth = 0
        for kname in KERNEL_NAMES:
            setattr(self, kname, self._wrap(getattr(inner, kname)))

    def _wrap(self, fn):
        def call(*args, **kwargs):
            if self._depth == 0:
                self.dispatches += 1
            self._depth += 1
            try:
                return fn(*args, **kwargs)
            finally:
                self._depth -= 1
        return call

    def scope(self):
        from repro.backend.registry import _backend_scope
        return _backend_scope(self)

    def __getattr__(self, name):  # non-kernel attributes pass through
        return getattr(self._inner, name)


def _sweep_driver(case: BenchCase, backend: str, oracle: bool = False):
    """One batched driver for the sweep case; ``oracle=True`` rebinds
    the retained pre-fusion loop body as its sweep implementation.

    Forward-update AA flavor: the paper's default scheme, and the one
    where the fused pipeline's old-row value reuse applies (the OTF
    table refreshes the row inside ``move``, see batched/jastrow.py)."""
    from repro.batched import BatchedCrowdDriver, JastrowSystemSpec

    spec = JastrowSystemSpec(n=case.n, seed=7, aa_flavor="soa")
    drv = BatchedCrowdDriver(spec, case.nwalkers, case.seed,
                             use_drift=True, backend=backend)
    if oracle:
        drv._sweep = drv._loop_sweep
    return drv


def _assert_sweep_bitwise(case: BenchCase) -> None:
    """The in-runner exactness gate: the fused numpy pipeline must be
    bitwise the loop oracle — accept totals, energies, positions."""
    import numpy as np

    fused = _sweep_driver(case, "numpy")
    loop = _sweep_driver(case, "numpy", oracle=True)
    for _ in range(2):
        ta, tb = fused.sweep(), loop.sweep()
        if ta != tb or not np.array_equal(fused.last_sweep_accepts,
                                          loop.last_sweep_accepts):
            raise RuntimeError(
                f"{case.name}: fused sweep accept stream diverged from "
                f"the loop oracle — exactness regression")
        if not np.array_equal(fused.measure(), loop.measure()):
            raise RuntimeError(
                f"{case.name}: fused sweep energies diverged from the "
                f"loop oracle — exactness regression")
    if not np.array_equal(fused.batch.R, loop.batch.R):
        raise RuntimeError(
            f"{case.name}: fused sweep positions diverged from the loop "
            f"oracle — exactness regression")


def run_sweep_case(case: BenchCase) -> dict:
    """Measure what whole-sweep fusion buys (docs/sweep_fusion.md).

    Legs: ``loop`` (the retained per-electron loop oracle — one backend
    dispatch per table move/functor/exp/accept, ~14 per electron),
    ``fused`` (the ``sweep_run`` pipeline kernel, one dispatch per
    sweep) and, when importable, ``jax`` (the whole-sweep
    ``lax.fori_loop`` jit; skipped otherwise, the backend-kind
    pattern).  The fused numpy leg is asserted bitwise against the
    loop oracle before any timing, each leg's backend-dispatch count
    is measured with a counting proxy, repetitions interleave with
    best-of kept, and a ``floor`` case emits a ``speedup_floors``
    entry for ``fused_over_loop``.
    """
    from repro.backend import BackendUnavailableError

    _assert_sweep_bitwise(case)
    legs = {}
    skipped = []
    for label in case.versions:
        backend = "jax" if label == "jax" else "numpy"
        try:
            drv = _sweep_driver(case, backend, oracle=(label == "loop"))
        except BackendUnavailableError:
            skipped.append(label)
            continue
        drv.sweep()  # warm-up (jit tracing + payload staging land here)
        counting = _CountingBackend(drv.backend)
        drv.backend = counting
        drv.sweep()
        drv.backend = counting._inner
        legs[label] = {"drv": drv, "dispatches": counting.dispatches,
                       "times": [], "prof": None}
    reps = 3
    for _ in range(reps):
        for label, leg in legs.items():
            drv = leg["drv"]
            PROFILER.start_run()
            t0 = time.perf_counter()
            for _ in range(case.steps):
                drv.sweep()
            leg["times"].append(time.perf_counter() - t0)
            leg["prof"] = PROFILER.stop_run(f"{case.name}/{label}")
    steps_walkers = case.steps * case.nwalkers
    versions: Dict[str, dict] = {}
    for label, leg in legs.items():
        drv = leg["drv"]
        best = min(leg["times"])
        walker_bytes = (drv.batch.R.nbytes + drv.batch.Rsoa.nbytes
                        + sum(t.storage_bytes for t in drv.tables)
                        ) / case.nwalkers
        entry = _version_entry(
            throughput=steps_walkers / best,
            seconds_per_step=best / case.steps,
            total_seconds=best,
            hotspots=leg["prof"].normalized(),
            peak_walker_bytes=walker_bytes)
        entry["dispatches_per_sweep"] = float(leg["dispatches"])
        entry["dispatches_per_electron"] = leg["dispatches"] / case.n
        versions[label] = entry
    speedups: Dict[str, float] = {}
    if "loop" in versions and "fused" in versions:
        speedups["fused_over_loop"] = (
            versions["loop"]["total_seconds"]
            / versions["fused"]["total_seconds"])
    if "loop" in versions and "jax" in versions:
        speedups["jax_over_loop"] = (
            versions["loop"]["total_seconds"]
            / versions["jax"]["total_seconds"])
    out = {
        "name": case.name, "kind": "sweep", "n_electrons": case.n,
        "steps": case.steps, "walkers": case.nwalkers,
        "versions": versions, "speedups": speedups, "skipped": skipped,
    }
    if case.floor > 0:
        out["speedup_floors"] = {"fused_over_loop": float(case.floor)}
    return out


def _private_rss_bytes() -> int:
    """This process's private (unshared) resident bytes — the number a
    per-worker table copy moves and a shared-slab mapping does not."""
    total = 0
    with open("/proc/self/smaps_rollup") as fh:
        for line in fh:
            if line.startswith(("Private_Clean:", "Private_Dirty:")):
                total += int(line.split()[1]) * 1024
    return total


def _rss_probe_child(descriptor, mode: str, wfd: int) -> None:
    """Forked-child body: attach the slab, realize one table-residency
    strategy, report the private-RSS delta in bytes over ``wfd``.

    Exits via ``os._exit`` so the parent's atexit/finalizer machinery
    (including the slab owner's unlink guard) never runs here.
    """
    import struct

    import numpy as np

    from repro.splines.slab import SharedCoefSlab

    status = 1
    try:
        slab = SharedCoefSlab.attach(descriptor)
        base = _private_rss_bytes()
        if mode == "copy":
            # What K independent workers do today: a private replica.
            table = np.array(slab.coefs)
        else:
            # Shared mapping: read-touch every page; they stay shared.
            table = float(np.asarray(slab.coefs).sum())
        delta = _private_rss_bytes() - base
        del table
        os.write(wfd, struct.pack("q", delta))
        slab.close()
        status = 0
    except Exception:
        pass
    finally:
        os._exit(status)


def _measure_worker_rss(descriptor, k: int) -> Optional[Dict[str, list]]:
    """Fork ``k`` probe children per strategy and collect RSS deltas.

    Children run sequentially (the per-worker delta is what matters,
    not aggregate pressure) and each measures around only its own
    table realization, so parent-inherited pages cancel out.  Returns
    None on hosts without ``fork`` + ``smaps_rollup``.
    """
    import struct

    if not hasattr(os, "fork") or not os.path.exists("/proc/self/smaps_rollup"):
        return None
    deltas: Dict[str, list] = {"copy": [], "slab": []}
    for mode in ("copy", "slab"):
        for _ in range(k):
            rfd, wfd = os.pipe()
            pid = os.fork()
            if pid == 0:  # pragma: no cover - exits via os._exit
                os.close(rfd)
                _rss_probe_child(descriptor, mode, wfd)
            os.close(wfd)
            data = b""
            while len(data) < 8:
                chunk = os.read(rfd, 8 - len(data))
                if not chunk:
                    break
                data += chunk
            os.close(rfd)
            _, st = os.waitpid(pid, 0)
            if len(data) == 8 and os.WIFEXITED(st) \
                    and os.WEXITSTATUS(st) == 0:
                deltas[mode].append(float(struct.unpack("q", data)[0]))
    if not deltas["copy"] or not deltas["slab"]:
        return None
    return deltas


def run_spline_memory_case(case: BenchCase) -> dict:
    """Time the flat per-channel 3D vgh path against the tile-blocked
    kernel on one shared-slab table, and measure what the slab saves.

    Timing legs interleave (A/B per repetition, best-of kept) on the
    identical slab-backed spline; the tiled result must be **bitwise**
    equal to the flat oracle — a mismatch fails the whole bench run.
    The memory half forks ``workers[0]`` children per strategy
    (private table copy vs shared-slab attach) and reports each child's
    private-RSS delta against the
    :meth:`~repro.memory.model.MemoryModel.shared_table_report`
    prediction; hosts without ``/proc`` fall back to pure accounting
    with ``rss_measured: false``.
    """
    import numpy as np

    from repro.batched.spo import batched_multi_vgh, batched_multi_vgh_flat
    from repro.memory.model import MemoryModel
    from repro.splines.bspline3d import BSpline3D
    from repro.splines.slab import SharedCoefSlab

    norb = case.n
    grid = case.grid or 12
    tile = case.tile or 64
    k = case.workers[0] if case.workers else 4
    rng = np.random.default_rng(case.seed)
    a = 6.0
    values = rng.normal(size=(grid, grid, grid, norb))
    source = BSpline3D.fit(values, np.linalg.inv(np.eye(3) * a),
                           dtype=np.float64)
    r = rng.uniform(0, a, (case.nwalkers, 3))
    with SharedCoefSlab.promote(source) as slab:
        sp = slab.as_spline()
        legs = {
            "flat": lambda: batched_multi_vgh_flat(sp, r),
            "tiled": lambda: batched_multi_vgh(sp, r, tile=tile),
        }
        results = {label: fn() for label, fn in legs.items()}  # warm-up
        for ref, got in zip(results["flat"], results["tiled"]):
            if not np.array_equal(ref, got):
                raise RuntimeError(
                    f"{case.name}: tiled vgh kernel is NOT bitwise equal "
                    f"to the flat path (tile={tile}) — exactness regression")
        best = {label: float("inf") for label in legs}
        for _ in range(case.steps):
            for label, fn in legs.items():
                t0 = time.perf_counter()
                fn()
                best[label] = min(best[label], time.perf_counter() - t0)
        deltas = _measure_worker_rss(slab.descriptor, k)
        table_bytes = float(slab.nbytes)
    predicted = MemoryModel.shared_table_report(table_bytes, k)
    if deltas is not None:
        copy_b = float(np.median(deltas["copy"]))
        # An attacher's private delta is ~0; its fair share of the one
        # physical slab is table/K.
        shared_b = float(np.median(deltas["slab"])) + table_bytes / k
        rss_measured = True
    else:
        copy_b = predicted["per_worker_copy_bytes"]
        shared_b = predicted["per_worker_shared_bytes"]
        rss_measured = False
    out_bytes = float(sum(arr.nbytes for arr in results["flat"]))
    versions = {
        label: _version_entry(
            throughput=case.nwalkers / best[label],
            seconds_per_step=best[label],
            total_seconds=best[label] * case.steps,
            hotspots={"Bspline-vgh": 1.0},
            peak_walker_bytes=out_bytes / case.nwalkers)
        for label in ("flat", "tiled")
    }
    out = {
        "name": case.name, "kind": "spline_memory", "n_electrons": case.n,
        "steps": case.steps, "walkers": case.nwalkers,
        "norb": norb, "grid": grid, "tile": tile,
        "versions": versions,
        "speedups": {"tiled_over_flat": best["flat"] / best["tiled"]},
        "memory": {
            "table_bytes": table_bytes,
            "n_processes": k,
            "predicted": predicted,
            "per_worker_copy_bytes": copy_b,
            "per_worker_shared_bytes": shared_b,
            "measured_ratio": shared_b / copy_b if copy_b else 0.0,
            "rss_measured": rss_measured,
        },
        "skipped": [],
    }
    if case.floor > 0:
        out["speedup_floors"] = {"tiled_over_flat": float(case.floor)}
    return out


_CASE_RUNNERS = {"system": run_system_case, "batched": run_batched_case,
                 "nlpp": run_nlpp_case, "streaming": run_streaming_case,
                 "backend": run_backend_case,
                 "spline_memory": run_spline_memory_case,
                 "sweep": run_sweep_case}


def run_suite(suite_name: str, tag: str,
              progress=None) -> dict:
    """Run every case of a named suite and return the artifact document."""
    cases = SUITES[suite_name]
    if METRICS.enabled:
        METRICS.reset()
    workloads = []
    for case in cases:
        if progress is not None:
            progress(f"running {case.kind} case {case.name} "
                     f"(versions: {', '.join(case.versions)})")
        with METRICS.scope(f"bench:{case.name}"):
            if case.kind == "parallel":
                workloads.append(run_parallel_case(case, progress=progress))
            else:
                workloads.append(_CASE_RUNNERS[case.kind](case))
    doc = {
        "schema": BENCH_SCHEMA_VERSION,
        "tag": tag,
        "suite": suite_name,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": host_fingerprint(),
        "workloads": workloads,
    }
    if METRICS.enabled:
        doc["metrics"] = METRICS.snapshot()
    return doc


def write_artifact(doc: dict, out_dir: str) -> str:
    """Schema-validate and write ``BENCH_<tag>.json``; returns the path."""
    errors = validate_artifact(doc)
    if errors:
        raise ValueError("refusing to write non-conforming artifact:\n  "
                         + "\n  ".join(errors))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{doc['tag']}.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_summary(doc: dict) -> str:
    """Human-readable digest of an artifact."""
    lines = [f"BENCH artifact '{doc['tag']}' (suite={doc.get('suite', '?')}, "
             f"host={doc['host'].get('hostname', '?')})"]
    for wl in doc["workloads"]:
        lines.append(f"  {wl['name']} [{wl['kind']}]")
        for label, entry in wl["versions"].items():
            top = sorted(entry["hotspots"].items(), key=lambda kv: -kv[1])[:3]
            hot = ", ".join(f"{c} {100 * f:.0f}%" for c, f in top)
            lines.append(
                f"    {label:<8s} {entry['throughput']:10.2f} walker-steps/s"
                f"  walker={entry['peak_walker_bytes'] / 1024.0:8.1f} KiB"
                f"  [{hot}]")
        for name, value in wl.get("speedups", {}).items():
            lines.append(f"    speedup {name} = {value:.2f}x")
    return "\n".join(lines)
