#!/usr/bin/env python
"""Exact-answer validation suite: H, H2+, H2 through the full QMC stack.

Three systems with known energies, run end to end (orbitals ->
determinants -> Jastrow -> distance tables -> Hamiltonian -> DMC):

  H    exact 1s orbital        E = -0.5      (zero variance)
  H2+  LCAO sigma_g, R = 2.0   E = -0.6026   (total, nodeless -> DMC exact)
  H2   LCAO + e-e Jastrow,     E = -1.1744   (total, nodeless -> DMC exact)
       R = 1.401

Run:  python examples/exact_benchmarks.py   (~2-3 minutes)
"""

import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests",
                                "integration"))

from repro.drivers.dmc import DMCDriver  # noqa: E402
from repro.drivers.vmc import VMCDriver  # noqa: E402


def run_hydrogen():
    from test_hydrogen import _hydrogen
    P, twf, ham, rng = _hydrogen(1.0, 0)
    res = VMCDriver(P, twf, ham, rng, timestep=0.5).run(walkers=10,
                                                        steps=30)
    return res.mean_energy, res.energy_error(), -0.5


def run_h2plus():
    from test_h2plus import _h2plus, BOND
    P, twf, ham, rng = _h2plus(1.0, 1)
    res = DMCDriver(P, twf, ham, rng, timestep=0.02).run(walkers=60,
                                                         steps=300)
    tail = np.asarray(res.energies[100:])
    return float(np.mean(tail)) + 1.0 / BOND, \
        float(np.std(tail) / np.sqrt(tail.size)), -0.6026


def run_h2():
    from test_h2_molecule import _h2, E_EXACT
    P, twf, ham, rng = _h2(2)
    res = DMCDriver(P, twf, ham, rng, timestep=0.01).run(walkers=80,
                                                         steps=350)
    tail = np.asarray(res.energies[120:])
    return float(np.mean(tail)), \
        float(np.std(tail) / np.sqrt(tail.size)), E_EXACT


def main() -> None:
    print(f"{'system':<8}{'method':<8}{'E (Ha)':>12}{'exact':>10}"
          f"{'error':>10}")
    for name, method, runner in (("H", "VMC", run_hydrogen),
                                 ("H2+", "DMC", run_h2plus),
                                 ("H2", "DMC", run_h2)):
        print(f"{name:<8}{method:<8}", end="", flush=True)
        e, err, exact = runner()
        print(f"{e:12.4f}{exact:10.4f}{e - exact:+10.4f}")
    print("\nH is zero-variance; H2+/H2 carry small time-step and "
          "statistical error.")


if __name__ == "__main__":
    main()
