#!/usr/bin/env python
"""Figure 1 style strong-scaling study on the simulated clusters.

Projects the measured NiO-64 op mixes onto the KNL (Trinity/Aries) and
BDW (Serrano/Omni-Path) machine models, then runs the cluster simulator
across node counts at the paper's target population of 131072 walkers —
including a discrete generation-by-generation population simulation with
real walker-message byte accounting.

Run:  python examples/strong_scaling.py
"""

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                "benchmarks"))

from harness import measure, projected_node_time  # noqa: E402
from repro.core.version import CodeVersion  # noqa: E402
from repro.memory.model import MemoryModel  # noqa: E402
from repro.parallel.cluster import ARIES, OMNIPATH, SimCluster  # noqa: E402
from repro.perfmodel.hardware import BDW, KNL  # noqa: E402
from repro.workloads.catalog import NIO64  # noqa: E402

POPULATION = 131072
NODES = [64, 128, 256, 512, 1024]


def node_throughput(machine, version, mode):
    m = measure("NiO-64", version)
    t_sweep = projected_node_time(m, machine, version, mode) / 2
    t_full = t_sweep * (768.0 / m.n_electrons) ** 2
    return (1.0 + machine.smt2_gain) / t_full


def main() -> None:
    print("measuring NiO-64 op mixes (short profiled runs)...")
    mm = MemoryModel(NIO64)
    curves = {}
    for label, machine, ic, mode in (("KNL", KNL, ARIES, "cache"),
                                     ("BDW", BDW, OMNIPATH, "flat")):
        for version in (CodeVersion.REF, CodeVersion.CURRENT):
            thr = node_throughput(machine, version, mode)
            wb = mm.walker_bytes(version)
            cluster = SimCluster(thr, ic, wb)
            curves[(label, version)] = cluster.scaling_curve(POPULATION,
                                                             NODES)

    base = curves[("BDW", CodeVersion.REF)][0].throughput
    print(f"\n{'nodes':<16}" + "".join(f"{m:>10}" for m in NODES))
    for (label, version), pts in curves.items():
        name = f"{label} {version.label}"
        print(f"{name:<16}" + "".join(
            f"{p.throughput / base:>10.1f}" for p in pts))
    print(f"{'KNL efficiency':<16}" + "".join(
        f"{p.efficiency:>10.3f}"
        for p in curves[("KNL", CodeVersion.CURRENT)]))

    print("\ndiscrete population simulation, 64 KNL nodes, 10 generations:")
    thr = node_throughput(KNL, CodeVersion.CURRENT, "cache")
    stats = SimCluster(thr, ARIES,
                       mm.walker_bytes(CodeVersion.CURRENT)) \
        .simulate_generations(64, POPULATION, generations=10)
    for k, v in stats.items():
        print(f"  {k}: {v}")


if __name__ == "__main__":
    main()
