#!/usr/bin/env python
"""Drive all four miniapps (Sec. 7.1) and print their speedup tables.

The miniapps isolate the paper's hot-spot classes — DistTable, Jastrow,
Bspline-SPO — plus the combined miniQMC, each comparing the reference
AoS kernels against the optimized SoA/compute-on-the-fly kernels.

Run:  python examples/miniqmc_demo.py [-n 96]
"""

import argparse

from repro.miniapps import (
    run_minidist, run_minijastrow, run_miniqmc, run_minispline,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("-n", type=int, default=96, help="electron count")
    ap.add_argument("-s", "--steps", type=int, default=2)
    args = ap.parse_args()

    print("== minidist: distance tables ==")
    res = run_minidist(n=args.n, steps=args.steps)
    print(res.format_table())

    print("\n== minijastrow: J1 + J2 ==")
    res = run_minijastrow(n=args.n, steps=args.steps)
    print(res.format_table())

    print("\n== minispline: 3D B-spline SPOs ==")
    res = run_minispline(norb=args.n, grid=16, points=50 * args.steps)
    print(res.format_table())

    print("\n== miniQMC: combined PbyP kernel mix ==")
    res = run_miniqmc(scale=0.25, steps=args.steps)
    print(res.format_table())
    for label, prof in res.profiles.items():
        print()
        print(prof.format_table())
    print(f"\noverall Ref -> Current speedup: "
          f"{res.speedup('Ref', 'Current'):.2f}x "
          "(paper: 2-4.5x depending on platform and problem)")


if __name__ == "__main__":
    main()
