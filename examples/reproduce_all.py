#!/usr/bin/env python
"""Regenerate every table and figure and write a combined report.

Runs the full benchmark suite (each harness prints its regenerated
table/figure and asserts the paper's qualitative claims) and collects
the output into ``reports/reproduction_report.txt``.

Run:  python examples/reproduce_all.py [--fast]
"""

import argparse
import os
import subprocess
import sys

HARNESSES = [
    "benchmarks/test_table1_workloads.py",
    "benchmarks/test_fig01_strong_scaling.py",
    "benchmarks/test_fig02_hotspots.py",
    "benchmarks/test_fig03_jastrow_functors.py",
    "benchmarks/test_fig07_roofline.py",
    "benchmarks/test_fig08_speedup_memory.py",
    "benchmarks/test_fig09_memory.py",
    "benchmarks/test_fig10_energy.py",
    "benchmarks/test_table2_speedups.py",
    "benchmarks/test_sec82_hyperthreading.py",
    "benchmarks/test_sec82_bandwidth.py",
    "benchmarks/test_ablation_delayed_update.py",
    "benchmarks/test_ablation_steps.py",
    "benchmarks/test_ablation_tiled_spline.py",
    "benchmarks/test_kernels.py",
    "benchmarks/test_kernels_nlpp.py",
]

FAST_SET = HARNESSES[:9]  # the paper's tables/figures only


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fast", action="store_true",
                    help="tables/figures only (skip ablations/kernels)")
    ap.add_argument("--out", default="reports/reproduction_report.txt")
    args = ap.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    os.makedirs(os.path.join(repo, os.path.dirname(args.out) or "."),
                exist_ok=True)
    targets = FAST_SET if args.fast else HARNESSES

    cmd = [sys.executable, "-m", "pytest", *targets,
           "-s", "-q", "--benchmark-disable"]
    print("running:", " ".join(cmd))
    proc = subprocess.run(cmd, cwd=repo, capture_output=True, text=True)
    report = proc.stdout + "\n" + proc.stderr
    out_path = os.path.join(repo, args.out)
    with open(out_path, "w") as f:
        f.write(report)
    print(report[-2000:])
    print(f"\nfull report: {out_path}")
    return proc.returncode


if __name__ == "__main__":
    raise SystemExit(main())
