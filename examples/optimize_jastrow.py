#!/usr/bin/env python
"""Optimize the two-body Jastrow — where Fig. 3's functors come from.

Samples configurations from |Psi|^2, then minimizes the variance of the
local energy over the Jastrow decay parameters with the configurations
held fixed (correlated sampling).  Finishes by printing the optimized
functor curves, Fig. 3 style, and the DMC efficiency gain
(kappa = 1/(sigma^2 tau_corr T_MC), Sec. 3).

Run:  python examples/optimize_jastrow.py
"""

import numpy as np

from repro.core import CodeVersion, QmcSystem
from repro.optimize import JastrowOptimizer


def main() -> None:
    system = QmcSystem.from_workload("Graphite", scale=1 / 16, seed=3,
                                     with_nlpp=False)
    parts = system.build(CodeVersion.CURRENT, value_dtype=np.float64)
    opt = JastrowOptimizer(parts, np.random.default_rng(7), n_samples=10)

    print("sampling configurations from |Psi|^2 ...")
    opt.sample_configurations()

    print("optimizing (decay_like, decay_unlike) from a bad start ...")
    res = opt.optimize(x0=(3.0, 3.0), max_iterations=40)
    print(f"  {res.summary()}")
    print(f"  parameters: {res.initial_params} -> "
          f"{np.round(res.final_params, 3)}")

    # kappa scales with 1/variance at fixed tau and time.
    gain = res.initial_variance / max(res.final_variance, 1e-12)
    print(f"  implied DMC-efficiency gain at fixed throughput: "
          f"{gain:.2f}x")

    print("\noptimized functors (Fig. 3 style):")
    like = opt._j2.functors[(0, 0)]
    unlike = opt._j2.functors[(0, 1)]
    grid = np.linspace(0.0, like.rcut, 9)
    print("  r:    " + " ".join(f"{r:6.2f}" for r in grid))
    print("  u-u:  " + " ".join(f"{v:6.3f}" for v in like.evaluate_v(grid)))
    print("  u-d:  " + " ".join(f"{v:6.3f}"
                                for v in unlike.evaluate_v(grid)))


if __name__ == "__main__":
    main()
