#!/usr/bin/env python
"""Quickstart: build a QMC system and run VMC + DMC with the public API.

Builds a scaled-down NiO-32 supercell (one unit cell, 48 electrons),
runs a short variational Monte Carlo equilibration and then diffusion
Monte Carlo (Alg. 1 of the paper), with the optimized "Current" code
version — SoA containers, forward updates, compute-on-the-fly Jastrows
and mixed precision.

Run:  python examples/quickstart.py
"""

from repro.core import CodeVersion, QmcSystem, run_dmc, run_vmc

def main() -> None:
    # A workload from Table 1, scaled to laptop size.  scale=0.125 keeps
    # one of NiO-32's eight unit cells: 4 ions, 48 electrons.
    system = QmcSystem.from_workload("NiO-32", scale=0.125, seed=42)

    print("== VMC (warmup / variational sampling) ==")
    vmc = run_vmc(system, CodeVersion.CURRENT, walkers=8, steps=10,
                  timestep=0.3, seed=1)
    print(vmc.summary())
    print(f"   <E_L> trace: {[round(e, 2) for e in vmc.energies[-5:]]}")

    print("\n== DMC (Alg. 1: drift-diffusion + branching) ==")
    dmc = run_dmc(system, CodeVersion.CURRENT, walkers=16, steps=15,
                  timestep=0.005, seed=2)
    print(dmc.summary())
    print(f"   population trace: {dmc.populations}")
    print(f"   E_T trace: {[round(e, 2) for e in dmc.trial_energies[-5:]]}")

    print("\n== Same physics, reference (AoS) build ==")
    ref = run_vmc(system, CodeVersion.REF, walkers=8, steps=3,
                  timestep=0.3, seed=1)
    print(ref.summary())
    print(f"\nCurrent vs Ref throughput: "
          f"{vmc.throughput / ref.throughput:.2f}x")


if __name__ == "__main__":
    main()
