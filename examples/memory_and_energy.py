#!/usr/bin/env python
"""Memory footprints (Figs. 8/9, Table 1) and energy traces (Fig. 10).

Prints the analytic footprint of every workload under every build
configuration at the paper's KNL run parameters, then models the
Fig. 10 power-vs-time comparison from a measured Ref/Current speedup.

Run:  python examples/memory_and_energy.py
"""

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                "benchmarks"))

from harness import measure  # noqa: E402
from repro.core.version import CodeVersion  # noqa: E402
from repro.memory.model import MemoryModel  # noqa: E402
from repro.perfmodel.energy import EnergyModel  # noqa: E402
from repro.perfmodel.hardware import KNL  # noqa: E402
from repro.workloads.catalog import WORKLOADS  # noqa: E402


def main() -> None:
    print("== memory footprints on KNL (128 threads, 1024 walkers) ==")
    for name, wl in WORKLOADS.items():
        model = MemoryModel(wl)
        print(f"\n{name}  (B-spline table, Table 1: "
              f"{wl.bspline_gb_paper} GB paper / "
              f"{model.table1_bspline_gb():.2f} GB model)")
        for version in CodeVersion:
            b = model.breakdown(version, 128, 1024)
            print(f"  {b.format_row()}")

    print("\n== Fig. 10: energy on KNL, NiO-32 ==")
    print("measuring Ref/Current speedup (short runs)...")
    ref = measure("NiO-32", CodeVersion.REF)
    cur = measure("NiO-32", CodeVersion.CURRENT)
    speedup = ref.seconds_per_sweep / cur.seconds_per_sweep
    em = EnergyModel(KNL, sample_period_s=5.0)
    t_cur, init = 600.0, 120.0
    tr_ref = em.trace(init, t_cur * speedup, label="Ref")
    tr_cur = em.trace(init, t_cur, label="Current")
    for tr in (tr_ref, tr_cur):
        print(f"  {tr.label:<8s} mean power {tr.mean_watts:6.1f} W  "
              f"energy {tr.energy_joules / 1e3:8.1f} kJ")
    ratio = EnergyModel.energy_ratio(tr_ref, tr_cur, init, init)
    print(f"  energy reduction (excl. init): {ratio:.2f}x  "
          f"vs speedup {speedup:.2f}x  -> commensurate, as in Fig. 10")


if __name__ == "__main__":
    main()
