#!/usr/bin/env python
"""Observe the Jastrow correlation hole in g(r) — physics, end to end.

Samples |Psi|^2 with and without the two-body Jastrow factor and
accumulates the electron-electron pair-correlation function from the
distance tables (the very tables Sec. 7.5 keeps in memory for
measurement reuse).  With J2 on, same- and opposite-spin electrons
avoid each other — the correlation hole at small r — and the structure
factor is suppressed at small k.

Run:  python examples/correlation_functions.py
"""

import numpy as np

from repro.core import CodeVersion, QmcSystem
from repro.drivers.vmc import VMCDriver
from repro.estimators import (
    PairCorrelationEstimator, StructureFactorEstimator,
)
from repro.viz import line_chart


def sample_gofr(with_jastrow: bool, steps: int = 60):
    system = QmcSystem.from_workload("NiO-32", scale=0.125, seed=11,
                                     with_nlpp=False)
    parts = system.build(CodeVersion.CURRENT, value_dtype=np.float64)
    twf = parts.twf
    if not with_jastrow:
        # Determinants only: drop J1/J2 from the product.
        from repro.wavefunction.trialwf import TrialWaveFunction
        twf = TrialWaveFunction([c for c in twf.components
                                 if getattr(c, "name", "") == "Det"])
    drv = VMCDriver(parts.electrons, twf, parts.ham,
                    np.random.default_rng(3), timestep=0.4)
    twf.evaluate_log(parts.electrons)
    gofr = PairCorrelationEstimator(parts.lattice, parts.n_electrons,
                                    nbins=24)
    sofk = StructureFactorEstimator(parts.lattice, parts.n_electrons,
                                    nk=10)
    for step in range(steps):
        drv.sweep()
        if step >= steps // 3:  # discard warmup
            parts.electrons.update_tables()
            gofr.accumulate(parts.electrons)
            sofk.accumulate(parts.electrons)
    return gofr, sofk


def main() -> None:
    print("sampling with J1*J2*D... ", flush=True)
    g_j, s_j = sample_gofr(True)
    print("sampling determinants only... ", flush=True)
    g_d, s_d = sample_gofr(False)

    r = g_j.bin_centers
    print(line_chart({"with Jastrow": g_j.gofr(),
                      "det only": g_d.gofr()},
                     x=r, height=14,
                     title="electron-electron g(r)"))
    hole_j = float(np.mean(g_j.gofr()[r < 1.2]))
    hole_d = float(np.mean(g_d.gofr()[r < 1.2]))
    print(f"\n  g(r<1.2) with Jastrow: {hole_j:.3f}   det only: "
          f"{hole_d:.3f}")
    print("  -> the Jastrow digs the correlation hole" if hole_j < hole_d
          else "  (statistics too short to resolve the hole this run)")

    print("\nstructure factor S(k), smallest shells:")
    for km, sj, sd in zip(s_j.kmags[:6], s_j.sofk()[:6], s_d.sofk()[:6]):
        print(f"  |k|={km:5.2f}   S_J={sj:6.3f}   S_det={sd:6.3f}")


if __name__ == "__main__":
    main()
