#!/usr/bin/env python
"""The paper's core experiment in miniature: NiO DMC, Ref vs Current.

Runs the NiO-32 benchmark (scaled) through all three build
configurations — Ref, Ref+MP and Current — collecting hot-spot profiles
(Fig. 2), throughput ratios (Fig. 8 top) and walker message sizes, then
prints a side-by-side comparison.

Run:  python examples/nio_dmc.py [--scale 0.25] [--steps 2]
"""

import argparse

import numpy as np

from repro.containers.buffer import WalkerBuffer
from repro.core import CodeVersion, QmcSystem, run_dmc


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.25,
                    help="fraction of the NiO-32 supercell (default 0.25)")
    ap.add_argument("--steps", type=int, default=2)
    ap.add_argument("--walkers", type=int, default=2)
    args = ap.parse_args()

    system = QmcSystem.from_workload("NiO-32", scale=args.scale, seed=7)
    results = {}
    msg_bytes = {}
    for version in (CodeVersion.REF, CodeVersion.REF_MP,
                    CodeVersion.CURRENT):
        parts = system.build(version)
        res = run_dmc(system, version, walkers=args.walkers,
                      steps=args.steps, timestep=0.005, profile=True,
                      parts=parts, seed=3)
        results[version] = res
        # Serialized walker size: what load balancing sends per walker.
        buf = WalkerBuffer(dtype=np.float64)
        parts.twf.evaluate_log(parts.electrons)
        parts.twf.register_data(parts.electrons, buf)
        msg_bytes[version] = buf.nbytes + parts.electrons.R.nbytes
        print(f"\n=== {version.label} ===")
        print(res.summary())
        print(res.profile.format_table())
        print(f"walker message size: {msg_bytes[version] / 1e6:.2f} MB")

    base = results[CodeVersion.REF].throughput
    print("\n=== summary (normalized to Ref) ===")
    for version, res in results.items():
        print(f"  {version.label:<8s} throughput {res.throughput / base:5.2f}x"
              f"   message {msg_bytes[version] / 1e6:7.2f} MB")
    print("\nPaper (Fig. 8, NiO-32): Ref+MP ~1.2-1.3x, Current ~2.4-2.6x; "
          "message size shrinks by the 5N^2 J2 matrices.")


if __name__ == "__main__":
    main()
