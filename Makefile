# Convenience targets for the repro package.

PYTHON ?= python

.PHONY: install test test-fast lint check bench report examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -m "not slow"

lint:
	$(PYTHON) -m repro.lint src/ --format=json

check: lint test

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) examples/reproduce_all.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/miniqmc_demo.py -n 48 -s 1
	$(PYTHON) examples/memory_and_energy.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis reports build dist
