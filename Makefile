# Convenience targets for the repro package.

PYTHON ?= python
BENCH_OUT ?= /tmp/repro-bench

.PHONY: install test test-fast lint lint-strict lint-baseline check bench \
	bench-check bench-parallel bench-backend bench-spline bench-figures \
	check-backends restart-check report examples clean

LINT_BASELINE = benchmarks/baselines/lint_baseline.json

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -m "not slow"

lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src/ benchmarks/ --format=json \
		--baseline $(LINT_BASELINE)

# Full determinism rule set, matcher-friendly text output, fails only on
# findings absent from the committed baseline (CI's lint-strict job).
lint-strict:
	PYTHONPATH=src $(PYTHON) -m repro.lint src/ benchmarks/ \
		--select R001,R002,R003,R004,R005,R006,R007,R008,R009,R010,R011,R012 \
		--baseline $(LINT_BASELINE)

# Regenerate the grandfathered-findings baseline (review the diff!).
lint-baseline:
	PYTHONPATH=src $(PYTHON) -m repro.lint src/ benchmarks/ \
		--write-baseline $(LINT_BASELINE)

# lint + tier-1 tests.  Optional-dependency targets are NOT included:
# run `make bench-check` before perf-sensitive PRs, and `make
# check-backends` when touching backend kernels (its jax parity legs
# only run where jax is installed — see docs/backends.md).
check: lint test

# Quick bench suite -> BENCH_<tag>.json (REPRO_METRICS embeds the timer tree).
bench:
	PYTHONPATH=src REPRO_METRICS=1 $(PYTHON) -m repro.bench --quick \
		--tag local --out $(BENCH_OUT)

# Regression gate: quick suite vs the committed baseline artifact.
# --enforce-floors makes a speedup_floors entry (e.g. the >=3x batched
# NLPP win) that the candidate failed to measure a failure, not a skip.
bench-check: bench
	PYTHONPATH=src $(PYTHON) -m repro.bench.compare \
		benchmarks/baselines/baseline.json $(BENCH_OUT)/BENCH_local.json \
		--enforce-floors

# Multi-core crowd scaling (workers = 0/1/2/4; counts the host cannot
# seat are skipped).  The runner asserts bitwise-identical energy traces
# across worker counts, so this doubles as the determinism smoke.
bench-parallel:
	PYTHONPATH=src REPRO_METRICS=1 $(PYTHON) -m repro.bench \
		--suite parallel --tag parallel --out $(BENCH_OUT)

# Kernel-backend micro-benchmarks (docs/backends.md): every registered
# hot kernel timed under numpy and, when importable, jax, on the two
# workload-shaped cases.  On jax-less hosts the jax leg is declared in
# the artifact's `skipped` list instead of failing.
bench-backend:
	PYTHONPATH=src REPRO_METRICS=1 $(PYTHON) -m repro.bench \
		--suite backend --tag backend --out $(BENCH_OUT)

# Shared-slab + tiled-vgh suite (docs/spline_memory.md): flat vs
# tile-blocked 3D vgh (bitwise-asserted, tiled_over_flat floor) plus
# forked per-worker RSS with a private table copy vs one SharedCoefSlab.
bench-spline:
	PYTHONPATH=src REPRO_METRICS=1 $(PYTHON) -m repro.bench \
		--suite spline --tag spline --out $(BENCH_OUT)

# Backend-parity gate, the local mirror of CI's backend-parity job:
# the backend suite plus the batched differential suite under each
# *available* backend (REPRO_BACKEND routes the kernels; the batched
# conftest skips bitwise-only classes for non-exact backends).
check-backends:
	PYTHONPATH=src $(PYTHON) -m pytest tests/backend/ -x -q
	PYTHONPATH=src REPRO_BACKEND=numpy $(PYTHON) -m pytest \
		tests/batched/ -x -q
	@PYTHONPATH=src $(PYTHON) -c "from repro.backend import available_backends; \
		import sys; sys.exit(0 if 'jax' in available_backends() else 3)" \
		&& PYTHONPATH=src REPRO_BACKEND=jax $(PYTHON) -m pytest \
			tests/backend/ tests/batched/ -x -q \
		|| { [ $$? -eq 3 ] && echo "jax not installed - jax leg skipped" \
			"(pip install -r requirements-ci-jax.txt)"; }

# Kill-and-restart parity battery with the runtime sanitizers armed:
# byte-identical traces + bit-identical online error bars after a
# mid-run kill (CI's restart-determinism job).
restart-check:
	PYTHONPATH=src REPRO_SANITIZE=1 $(PYTHON) -m pytest -x -q \
		tests/integration/test_restart_parity.py \
		tests/output/test_stream.py tests/output/test_runstate.py \
		tests/stats/test_online.py

# Per-figure/table paper benchmarks (pytest-benchmark harness).
bench-figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) examples/reproduce_all.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/miniqmc_demo.py -n 48 -s 1
	$(PYTHON) examples/memory_and_energy.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis reports build dist
